// INTERNAL header of the batched decide_all sweep — included only by
// core/batch_engine.cpp and the per-ISA kernel translation units
// (core/batch_sweep_avx2.cpp, core/batch_sweep_avx512.cpp). Not part of
// the public API.
//
// The warm-neighbourhood resolve exists in two equivalent forms: the
// branchy early-exit case analysis of decide_task (the scalar kernel —
// fastest on scalar hardware because a smooth controlled run makes its
// branches predict nearly perfectly) and the branch-free compare/select
// dataflow of resolve_lanes<Backend>, written once and instantiated by
// the AVX2/AVX512/NEON backends built under the SPEEDQM_SIMD CMake
// option (ScalarBackend is its one-lane instantiation, kept as the
// executable specification of the dataflow). Both forms case-split the
// probe outcomes identically and fall back to the identical shared
// search beyond the one-step neighbourhood, so decisions (Decision.ops
// included) are bit-identical across kernels — differential-gated by
// tests/test_td_compressed.cpp and bench_multi_task.
//
// Vector kernels live in their own translation units compiled with the
// matching ISA flags; BatchDecisionEngine picks a kernel AT RUNTIME from
// __builtin_cpu_supports, so one binary runs correctly on any x86-64
// machine (the AVX512 kernel engages only where it can execute).
#pragma once

#include <cstdint>
#include <type_traits>

#include "core/decision_search.hpp"
#include "core/sweep_stats.hpp"
#include "core/td_compressed.hpp"
#include "core/types.hpp"

namespace speedqm {
namespace sweep_detail {

/// Arena adapter: the flat 64-bit row-major layout (one load per probe).
/// (External linkage on purpose: it appears in the signatures of the
/// per-ISA kernel entry points below.)
struct FlatArena {
  const TimeNs* const* tables;
  std::size_t nq;

  struct Row {
    const TimeNs* p;
  };
  Row row(std::size_t task, StateIndex s) const {
    return Row{tables[task] + s * nq};
  }
  static TimeNs value(const Row& r, Quality q) { return r.p[q]; }
};

/// Arena adapter: the delta-coded layout (decode per probe; exact).
struct CompressedArena {
  const CompressedTdTable* tables;

  using Row = CompressedTdTable::RowRef;
  Row row(std::size_t task, StateIndex s) const { return tables[task].row(s); }
  static TimeNs value(const Row& r, Quality q) { return r.value(q); }
};

/// Everything one decide_all pass needs, bundled for the kernel calls.
struct SweepArgs {
  const StateIndex* sizes;    ///< per task: number of states
  Quality* hints;             ///< per task: warm hint (updated in place)
  std::size_t num_tasks;
  Quality qmax;
  const StateIndex* states;
  TimeNs t;
  Decision* out;
  /// Non-null on sampled sweeps only: kernels record occupancy/outcome
  /// counters here for the engine's adaptive dispatch (core/sweep_stats.hpp).
  SweepStats* stats = nullptr;
};

// The helper templates below live in an ANONYMOUS namespace on purpose,
// unusual as that is for a header: the per-ISA translation units include
// this file while compiled with -mavx2 / -mavx512f, and if these
// function templates had external (comdat) linkage the linker could pick
// an ISA-flagged instantiation as the program-wide definition — leaking,
// say, AVX512 code into the scalar fallback path and crashing the
// "one binary runs on any x86-64" runtime dispatch on older CPUs. With
// internal linkage every translation unit keeps the copy compiled with
// its own ISA flags. (This header is internal and included by exactly
// three TUs; the duplication is a few hundred bytes each.)
namespace {

/// One-lane backend: masks are 0 / ~0 in a plain 64-bit integer, selects
/// are bitwise blends — no branches, so the "scalar" kernel is the same
/// straight-line dataflow the vector kernels run.
struct ScalarBackend {
  static constexpr int kLanes = 1;
  using Vec = std::int64_t;
  using Mask = std::uint64_t;

  static Vec load(const std::int64_t* p) { return *p; }
  static void store(std::int64_t* p, Vec v) { *p = v; }
  static Vec splat(std::int64_t x) { return x; }
  static Vec sub(Vec a, Vec b) { return a - b; }
  static Vec add(Vec a, Vec b) {
    return static_cast<Vec>(static_cast<std::uint64_t>(a) +
                            static_cast<std::uint64_t>(b));
  }
  static Vec shr1(Vec a) {  ///< logical >> 1 (operands are non-negative)
    return static_cast<Vec>(static_cast<std::uint64_t>(a) >> 1);
  }
  static Mask cmpge(Vec a, Vec b) { return a >= b ? ~0ull : 0ull; }
  static Mask cmpgt(Vec a, Vec b) { return a > b ? ~0ull : 0ull; }
  static Mask cmpeq(Vec a, Vec b) { return a == b ? ~0ull : 0ull; }
  static Mask m_and(Mask a, Mask b) { return a & b; }
  static Mask m_andnot(Mask a, Mask b) { return ~a & b; }  ///< (~a) & b
  static Mask m_or(Mask a, Mask b) { return a | b; }
  static Vec select(Mask m, Vec a, Vec b) {  ///< m ? a : b
    return static_cast<Vec>((static_cast<Mask>(a) & m) |
                            (static_cast<Mask>(b) & ~m));
  }
  static std::uint32_t bits(Mask m) { return static_cast<std::uint32_t>(m & 1); }
};

/// Splatted per-call constants shared by every resolve instantiation.
template <class B>
struct ResolveConsts {
  typename B::Vec vt, vqmax, vqtop1, vzero, vone, vtwo;
  explicit ResolveConsts(TimeNs t, Quality qmax)
      : vt(B::splat(t)),
        vqmax(B::splat(qmax)),
        vqtop1(B::splat(qmax - 1)),
        vzero(B::splat(0)),
        vone(B::splat(1)),
        vtwo(B::splat(2)) {}
};

template <class B>
struct ResolveOut {
  typename B::Vec q;         ///< resolved quality (decided lanes)
  typename B::Vec ops;       ///< resolved Decision.ops (decided lanes)
  typename B::Mask decided;  ///< lanes fully resolved by the neighbourhood
  typename B::Mask inf;      ///< decided lanes that are infeasible (q = qmin)
  typename B::Mask climb;    ///< sat(h): an UNDECIDED lane with this set is
                             ///< climbing >= 2, otherwise falling >= 2
};

/// The warm-neighbourhood resolve over one lane group — THE decision
/// dataflow, written once and instantiated by every kernel. Replicates
/// the shared prefix search of core/decision_search.hpp for every outcome
/// within one step of the hint (stay / one step up to the top / one step
/// down / infeasible at qmin) and leaves everything else — climbing or
/// falling two or more levels — undecided for the full search. Probe
/// outcomes, chosen qualities and op counts match decide_max_quality
/// probe for probe.
template <class B>
inline ResolveOut<B> resolve_lanes(typename B::Vec vh, typename B::Vec vup,
                                   typename B::Vec vdn, typename B::Vec h,
                                   const ResolveConsts<B>& c) {
  const typename B::Mask at_top = B::cmpeq(h, c.vqmax);
  const typename B::Mask at_bot = B::cmpeq(h, c.vzero);
  const typename B::Mask sat_h = B::cmpge(vh, c.vt);
  // Effective neighbour probes: clamped loads masked by the edge flags,
  // exactly the (at_top ? ... : ...) guards of the scalar search.
  const typename B::Mask sat_up = B::m_andnot(at_top, B::cmpge(vup, c.vt));
  const typename B::Mask sat_dn = B::m_andnot(at_bot, B::cmpge(vdn, c.vt));

  const typename B::Mask m_stay = B::m_andnot(sat_up, sat_h);
  const typename B::Mask m_up1 =
      B::m_and(B::m_and(sat_h, sat_up), B::cmpeq(h, c.vqtop1));
  const typename B::Mask m_inf = B::m_andnot(sat_h, at_bot);
  const typename B::Mask m_dn1 = B::m_andnot(sat_h, sat_dn);

  ResolveOut<B> r;
  r.decided = B::m_or(B::m_or(m_stay, m_up1), B::m_or(m_inf, m_dn1));
  r.inf = m_inf;
  r.climb = sat_h;
  // q = stay ? h : up1 ? qmax : inf ? qmin : h - 1 (the m_dn1 lane).
  r.q = B::select(m_stay, h, B::sub(h, c.vone));
  r.q = B::select(m_up1, c.vqmax, r.q);
  r.q = B::select(m_inf, c.vzero, r.q);
  // ops = 1 for a lone probe (hint at the top, or qmin infeasible),
  // 2 for every other resolved outcome — the hint plus one neighbour.
  const typename B::Mask one_probe = B::m_or(B::m_and(m_stay, at_top), m_inf);
  r.ops = B::select(one_probe, c.vone, c.vtwo);
  return r;
}

/// The full shared search over one arena row — the fallback beyond the
/// warm neighbourhood, and the cold-start path. Identical to the
/// per-task TabledNumericManager probes (what pins batched == sequential).
template <class Arena>
inline Decision search_row(const typename Arena::Row& row, Quality qmax,
                           Quality hint, TimeNs t) {
  return decide_max_quality(qmax, hint, [&](Quality q, std::uint64_t*) {
    return Arena::value(row, q) >= t;
  });
}

inline int popcount32(std::uint32_t x) { return __builtin_popcount(x); }

/// The vectorized fallback search: every lane a warm resolve left
/// undecided (climbing or falling >= 2 levels) runs decide_max_quality's
/// bounded binary search, all lanes in LOCK STEP — one masked
/// compare/select round per probe depth instead of one branchy scalar
/// search per lane. The probe SCHEDULE is pinned: decide_max_quality's
/// ops counter is part of the Decision contract (it drives the overhead
/// model), so each lane must probe exactly the mids the scalar search
/// would, in order. The vector win therefore comes from resolving the
/// lanes' searches together — shared mid arithmetic, branch-free lo/hi
/// updates, per-lane exit folded into one group-wide mask test — not from
/// reshaping the search. Lanes with shallower searches go inactive early
/// and coast (masked out) until the deepest lane finishes.
///
/// Inputs: `rows`/`hbuf` per lane; `pending` = undecided lanes (bit i);
/// `climb` = pending lanes with sat(h) (from ResolveOut.climb). Probes
/// the resolve already paid for (sat(h), sat(h±1)) are NOT repeated —
/// the prologue enters the binary search mid-ladder exactly where
/// decide_max_quality would, ops included.
///
/// Outputs for pending lanes: qout/oout (quality, Decision.ops) and
/// `*feas_out` bit i clear when lane i is infeasible (q = qmin).
template <class Arena, class B>
inline void search_lanes(const typename Arena::Row* rows,
                         const std::int64_t* hbuf, std::uint32_t pending,
                         std::uint32_t climb, Quality qmax, TimeNs t,
                         std::int64_t* qout, std::int64_t* oout,
                         std::uint32_t* feas_out) {
  constexpr int W = B::kLanes;
  alignas(64) std::int64_t lo[W], hi[W], ops[W], mid[W], probe[W];
  std::uint32_t feas = (1u << W) - 1u;
  for (int i = 0; i < W; ++i) {
    lo[i] = 0;
    hi[i] = 0;  // lo == hi: lane never enters the probe loop
    ops[i] = 0;
    probe[i] = 0;
    if (!(pending & (1u << i))) continue;
    const Quality h = static_cast<Quality>(hbuf[i]);
    if (climb & (1u << i)) {
      // Climbing: sat(h) and sat(h+1) already probed by the resolve.
      lo[i] = h + 1;
      hi[i] = qmax;
      ops[i] = 2;
    } else if (h - 1 == kQmin) {
      // Falling with nothing between: !sat(h), !sat(h-1 = qmin) probed.
      ops[i] = 2;
      feas &= ~(1u << i);
    } else if (Arena::value(rows[i], kQmin) >= t) {
      lo[i] = kQmin;  // qmin holds: search (qmin, h-2], third probe paid
      hi[i] = h - 2;
      ops[i] = 3;
    } else {
      ops[i] = 3;  // even qmin fails
      feas &= ~(1u << i);
    }
  }
  const typename B::Vec vt = B::splat(t);
  const typename B::Vec vone = B::splat(1);
  typename B::Vec vlo = B::load(lo);
  typename B::Vec vhi = B::load(hi);
  typename B::Vec vops = B::load(ops);
  for (;;) {
    const typename B::Mask active = B::cmpgt(vhi, vlo);
    if (B::bits(active) == 0) break;
    // mid = lo + (hi - lo + 1) / 2, decide_max_quality's exact midpoint.
    const typename B::Vec vmid =
        B::add(vlo, B::shr1(B::add(B::sub(vhi, vlo), vone)));
    B::store(mid, vmid);
    const std::uint32_t abits = B::bits(active);
    for (int i = 0; i < W; ++i) {
      if (abits & (1u << i)) {
        probe[i] = Arena::value(rows[i], static_cast<Quality>(mid[i]));
      }
    }
    const typename B::Mask sat = B::m_and(active, B::cmpge(B::load(probe), vt));
    vlo = B::select(sat, vmid, vlo);
    vhi = B::select(B::m_andnot(sat, active), B::sub(vmid, vone), vhi);
    vops = B::select(active, B::add(vops, vone), vops);
  }
  B::store(qout, vlo);
  B::store(oout, vops);
  *feas_out = feas;
}

/// One task decided through the warm-neighbourhood resolve with early
/// exits — the scalar kernel's whole loop body, and every vector kernel's
/// handler for lanes that do not fit a full group (finished/cold lanes,
/// low-occupancy groups, ragged tails). This is the PR-3 branchy resolve,
/// kept branchy on purpose: a feasible controlled run's outcomes are
/// smooth, so these branches predict nearly perfectly and the early exits
/// beat a branch-free dataflow on scalar hardware. The case analysis is
/// the same one resolve_lanes computes with compares + selects, so
/// decisions and Decision.ops agree lane for lane (differential-gated).
///
/// kStats is a compile-time switch (not `if (a.stats)` at run time) so the
/// 15-of-16 unsampled sweeps pay zero instructions for the occupancy
/// counters on this hot path; the engine's sampled sweeps take the kStats
/// instantiation.
template <class Arena, bool kStats = false>
inline std::uint64_t decide_task(const Arena& arena, const SweepArgs& a,
                                 std::size_t task) {
  const StateIndex s = a.states[task];
  if (s >= a.sizes[task]) return 0;  // finished: out untouched, no ops
  const typename Arena::Row row = arena.row(task, s);
  const Quality h = a.hints[task];
  const Quality qmax = a.qmax;
  const TimeNs t = a.t;
  if constexpr (kStats) {
    ++a.stats->live;
    if (h >= 0) ++a.stats->warm;
  }
  Decision d;
  if (h >= 0) {
    const bool at_top = h >= qmax;
    const bool at_bottom = h <= kQmin;
    const bool sat_h = Arena::value(row, h) >= t;
    const bool sat_up = !at_top && Arena::value(row, at_top ? h : h + 1) >= t;
    const bool sat_dn =
        !at_bottom && Arena::value(row, at_bottom ? h : h - 1) >= t;
    if (sat_h) {
      if (at_top || !sat_up) {          // stay at the hint
        d.quality = h;
        d.ops = at_top ? 1 : 2;
      } else if (h + 1 == qmax) {       // one step up hits the top
        d.quality = qmax;
        d.ops = 2;
      } else {
        if constexpr (kStats) ++a.stats->searched;
        d = search_row<Arena>(row, qmax, h, t);  // climbing: shared search
      }
    } else if (at_bottom) {             // qmin fails: infeasible
      d.quality = kQmin;
      d.feasible = false;
      d.ops = 1;
    } else if (sat_dn) {                // one step down
      d.quality = h - 1;
      d.ops = 2;
    } else {
      if constexpr (kStats) ++a.stats->searched;
      d = search_row<Arena>(row, qmax, h, t);    // falling: shared search
    }
  } else {
    d = search_row<Arena>(row, qmax, h, t);      // cold start
  }
  a.hints[task] = d.quality;
  a.out[task] = d;
  return d.ops;
}

/// The batched sweep over one arena with one resolve backend: per task a
/// row cursor from the SoA arrays, the warm neighbourhood resolved with
/// compares + selects (resolve_lanes), cold starts and
/// beyond-neighbourhood outcomes through the full shared search. Written
/// once; every (arena, backend) combination instantiates this template,
/// which is what keeps the decide_all paths bit-identical. One-lane
/// backends resolve inline; vector backends stage lane groups through a
/// small SoA buffer (used for arenas whose probes decode scalar — the
/// flat-arena x86 kernels have gather-based specializations instead).
template <class Arena, class B, bool kStats = false>
std::uint64_t sweep_staged(const Arena& arena, const SweepArgs& a) {
  std::uint64_t total = 0;
  if constexpr (B::kLanes == 1) {
    for (std::size_t task = 0; task < a.num_tasks; ++task) {
      total += decide_task<Arena, kStats>(arena, a, task);
    }
    return total;
  } else {
    const ResolveConsts<B> consts(a.t, a.qmax);
    constexpr int W = B::kLanes;
    alignas(64) std::int64_t vh[W], vup[W], vdn[W], hbuf[W], qbuf[W], obuf[W];
    typename Arena::Row rows[W];
    std::size_t lane_task[W];
    int count = 0;

    const auto flush = [&]() {
      for (int i = count; i < W; ++i) {  // pad: resolves to "stay", discarded
        hbuf[i] = 0;
        vh[i] = a.t;
        vup[i] = a.t - 1;
        vdn[i] = a.t;
      }
      const ResolveOut<B> r = resolve_lanes<B>(
          B::load(vh), B::load(vup), B::load(vdn), B::load(hbuf), consts);
      B::store(qbuf, r.q);
      B::store(obuf, r.ops);
      const std::uint32_t fall = ~B::bits(r.decided) & ((1u << W) - 1u);
      const std::uint32_t inf = B::bits(r.inf);
      if constexpr (kStats) {
        a.stats->live += static_cast<std::uint64_t>(count);
        a.stats->warm += static_cast<std::uint64_t>(count);
        a.stats->searched += static_cast<std::uint64_t>(popcount32(fall));
      }
      alignas(64) std::int64_t sq[W], so[W];
      std::uint32_t sfeas = 0;
      if (fall != 0) {  // lock-step search for every fallback lane at once
        const std::uint32_t climb = B::bits(r.climb) & fall;
        search_lanes<Arena, B>(rows, hbuf, fall, climb, a.qmax, a.t, sq, so,
                               &sfeas);
      }
      for (int i = 0; i < count; ++i) {
        Decision d;
        if (fall & (1u << i)) {
          d.quality = static_cast<Quality>(sq[i]);
          d.ops = static_cast<std::uint64_t>(so[i]);
          d.feasible = (sfeas & (1u << i)) != 0;
        } else {
          d.quality = static_cast<Quality>(qbuf[i]);
          d.ops = static_cast<std::uint64_t>(obuf[i]);
          d.feasible = (inf & (1u << i)) == 0;
        }
        a.hints[lane_task[i]] = d.quality;
        a.out[lane_task[i]] = d;
        total += d.ops;
      }
      count = 0;
    };

    for (std::size_t task = 0; task < a.num_tasks; ++task) {
      const StateIndex s = a.states[task];
      if (s >= a.sizes[task]) continue;
      const Quality h = a.hints[task];
      if (h < 0) {
        total += decide_task<Arena, kStats>(arena, a, task);
        continue;
      }
      const typename Arena::Row row = arena.row(task, s);
      const int i = count;
      lane_task[i] = task;
      hbuf[i] = h;
      if constexpr (std::is_same_v<Arena, CompressedArena>) {
        // Block decode: one pass over the row's anchor/delta/residual
        // planes yields the whole [h-1, h+2] window (plane guard pads
        // absorb the out-of-row lanes, which the resolve masks discard) —
        // the staged kernels stop paying three independent scalar decodes.
        TimeNs w4[4];
        row.window4(h - 1, w4);
        vdn[i] = w4[0];
        vh[i] = w4[1];
        vup[i] = w4[2];
      } else {
        vh[i] = Arena::value(row, h);
        vup[i] = Arena::value(row, h >= a.qmax ? h : h + 1);
        vdn[i] = Arena::value(row, h <= kQmin ? h : h - 1);
      }
      rows[i] = row;
      if (++count == W) flush();
    }
    if (count > 0) flush();
    return total;
  }
}

}  // namespace

// --- Per-ISA kernels (defined in batch_sweep_avx2.cpp /
// --- batch_sweep_avx512.cpp; return false / never called when their ISA
// --- is not compiled in or the running CPU lacks it).

/// True when the AVX2 kernel is compiled in AND this CPU executes AVX2.
bool avx2_usable();
std::uint64_t sweep_flat_avx2(const FlatArena& arena, const SweepArgs& a);
std::uint64_t sweep_compressed_avx2(const CompressedArena& arena,
                                    const SweepArgs& a);

/// True when the AVX512 kernel is compiled in AND this CPU executes it.
bool avx512_usable();
std::uint64_t sweep_flat_avx512(const FlatArena& arena, const SweepArgs& a);
std::uint64_t sweep_compressed_avx512(const CompressedArena& arena,
                                      const SweepArgs& a);

}  // namespace sweep_detail
}  // namespace speedqm
