// Control relaxation regions (section 3.3, Proposition 3).
//
// Rrq is the set of states from which the Quality Manager is guaranteed to
// choose quality q for the next r consecutive actions, whatever the actual
// execution times (bounded by Cwc) turn out to be. Proposition 3 gives the
// symbolic characterization (0-based):
//
//   (s, t) in Rrq  <=>  tD(s+r-1, q+1) < t <= tD,r(s, q)
//   tD,r(s, q)      =  min_{s<=j<=s+r-1} [ tD(j, q) - Cwc(a_s..a_{j-1}, q) ]
//
// (lower bound -inf when q = qmax). Membership lets the controller *skip*
// the next r-1 manager invocations entirely: this is the paper's second
// symbolic implementation, 2 * |A| * |Q| * |rho| precomputed integers
// (99,876 for the MPEG configuration with rho = {1,10,20,30,40,50}).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/policy.hpp"
#include "core/quality_region.hpp"
#include "core/td_compressed.hpp"
#include "core/types.hpp"

namespace speedqm {

/// Precomputed relaxation borders for a fixed step set rho.
///
/// ArenaLayout::kCompressed stores each border plane in td_compressed's
/// block-leader delta format, treating the row-major [r_idx][state][quality]
/// plane as rho.size() * num_states rows of num_levels entries. Both border
/// monotonicity directions carry over: along quality the borders inherit
/// tD's non-increasing rows, and along rho (adjacent rows within a block
/// plane at fixed state stride) widening the window can only shrink the
/// min, so residuals stay narrow; rows that break either property (e.g. the
/// kTimeMinusInf padding for states with fewer than r actions) round-trip
/// exactly through the kWidth64 fallback. Decoding is bit-exact, so every
/// lookup — max_relaxation ops included — matches the flat layout.
class RelaxationTable {
 public:
  /// Builds borders for every r in `rho` (positive, strictly increasing).
  /// `region` must come from the same engine (it supplies tD).
  RelaxationTable(const PolicyEngine& engine, const QualityRegionTable& region,
                  std::vector<int> rho,
                  ArenaLayout layout = ArenaLayout::kFlat);

  /// Reconstructs a table from raw border arrays (deserialization path).
  /// `upper` and `lower` are row-major [r_idx][state][quality] of size
  /// rho.size() * num_states * num_levels each.
  RelaxationTable(StateIndex num_states, int num_levels, std::vector<int> rho,
                  std::vector<TimeNs> upper, std::vector<TimeNs> lower,
                  ArenaLayout layout = ArenaLayout::kFlat);

  ArenaLayout layout() const { return layout_; }
  const std::vector<int>& rho() const { return rho_; }
  StateIndex num_states() const { return n_; }
  int num_levels() const { return nq_; }
  Quality qmax() const { return nq_ - 1; }

  /// Upper border tD,r(s, q); r must be an element of rho and s + r <= n.
  TimeNs upper(StateIndex s, Quality q, int r) const;
  /// Lower border tD(s+r-1, q+1); kTimeMinusInf for q = qmax.
  TimeNs lower(StateIndex s, Quality q, int r) const;

  /// Membership test: (s, t) in Rrq for r in rho (false when fewer than r
  /// actions remain).
  bool contains(StateIndex s, TimeNs t, Quality q, int r) const;

  /// Largest r in rho with (s, t) in Rrq, or 1 when none qualifies (R1q = Rq
  /// always holds for the quality the region table just chose). Scans rho
  /// from the largest step downward; counts probes into *ops when non-null.
  int max_relaxation(StateIndex s, TimeNs t, Quality q,
                     std::uint64_t* ops = nullptr) const;

  /// Logical integer count 2 * |A| * |Q| * |rho| (the paper's metric),
  /// independent of the storage layout.
  std::size_t num_integers() const {
    return 2 * rho_.size() * n_ * static_cast<std::size_t>(nq_);
  }
  /// Actual stored bytes (block metadata + planes when compressed).
  std::size_t memory_bytes() const;

  /// Raw flat border planes (serialization path); require the flat layout.
  const std::vector<TimeNs>& raw_upper() const;
  const std::vector<TimeNs>& raw_lower() const;

 private:
  std::size_t idx(std::size_t r_idx, StateIndex s, Quality q) const;
  void compress_planes();

  StateIndex n_;
  int nq_;
  ArenaLayout layout_ = ArenaLayout::kFlat;
  std::vector<int> rho_;
  /// Row-major [r_idx][state][quality]; entries for states with fewer than
  /// r actions remaining hold kTimeMinusInf (never satisfiable). Cleared
  /// (moved into cupper_/clower_) under ArenaLayout::kCompressed.
  std::vector<TimeNs> upper_;
  std::vector<TimeNs> lower_;
  std::optional<CompressedTdTable> cupper_;
  std::optional<CompressedTdTable> clower_;
};

}  // namespace speedqm
