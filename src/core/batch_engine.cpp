#include "core/batch_engine.hpp"

#include "core/batch_sweep.hpp"
#include "core/fast_manager.hpp"
#include "core/numeric_manager.hpp"
#include "support/contract.hpp"

// The NEON backend lives here rather than in its own translation unit:
// NEON is part of the aarch64 baseline ISA, so no special compile flags
// are needed and no runtime CPU check beyond compile-time detection.
#if defined(SPEEDQM_SIMD) && defined(__aarch64__) && defined(__ARM_NEON)
#define SPEEDQM_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace speedqm {

namespace {

using sweep_detail::CompressedArena;
using sweep_detail::FlatArena;
using sweep_detail::ScalarBackend;
using sweep_detail::SweepArgs;

#if SPEEDQM_SIMD_NEON

struct NeonBackend {
  static constexpr int kLanes = 2;
  using Vec = int64x2_t;
  using Mask = uint64x2_t;

  static Vec load(const std::int64_t* p) { return vld1q_s64(p); }
  static void store(std::int64_t* p, Vec v) { vst1q_s64(p, v); }
  static Vec splat(std::int64_t x) { return vdupq_n_s64(x); }
  static Vec sub(Vec a, Vec b) { return vsubq_s64(a, b); }
  static Vec add(Vec a, Vec b) { return vaddq_s64(a, b); }
  static Vec shr1(Vec a) {  // logical >> 1 (operands are non-negative)
    return vreinterpretq_s64_u64(vshrq_n_u64(vreinterpretq_u64_s64(a), 1));
  }
  static Mask cmpge(Vec a, Vec b) { return vcgeq_s64(a, b); }
  static Mask cmpgt(Vec a, Vec b) { return vcgtq_s64(a, b); }
  static Mask cmpeq(Vec a, Vec b) { return vceqq_s64(a, b); }
  static Mask m_and(Mask a, Mask b) { return vandq_u64(a, b); }
  static Mask m_andnot(Mask a, Mask b) { return vbicq_u64(b, a); }  // b & ~a
  static Mask m_or(Mask a, Mask b) { return vorrq_u64(a, b); }
  static Vec select(Mask m, Vec a, Vec b) { return vbslq_s64(m, a, b); }
  static std::uint32_t bits(Mask m) {
    return static_cast<std::uint32_t>(vgetq_lane_u64(m, 0) & 1) |
           (static_cast<std::uint32_t>(vgetq_lane_u64(m, 1) & 1) << 1);
  }
};

#endif  // SPEEDQM_SIMD_NEON

/// Best usable vector kernel for one engine instance (0 none, 1 AVX2,
/// 2 AVX512, 3 NEON). The x86 kernels are picked by what the running CPU
/// executes, so one SPEEDQM_SIMD build serves every x86-64 machine. Both
/// arena layouts vectorize: the compressed layout block-decodes probes in
/// registers (see the per-ISA decode_window helpers), so it no longer
/// forces the scalar kernel.
int pick_vector_kernel(BatchDecisionEngine::Kernel kernel,
                       BatchDecisionEngine::Mode mode) {
  if (kernel == BatchDecisionEngine::Kernel::kScalar ||
      mode != BatchDecisionEngine::Mode::kTabled) {
    return 0;  // incremental mode has no arena to vectorize over
  }
#if SPEEDQM_SIMD_NEON
  return 3;
#else
  if (sweep_detail::avx512_usable()) return 2;
  if (sweep_detail::avx2_usable()) return 1;
  return 0;
#endif
}

/// Task lanes one vector group of the given kernel holds — the occupancy
/// the adaptive dispatch needs before vector groups stop running ragged.
std::uint64_t kernel_lanes(int kernel_id) {
  switch (kernel_id) {
    case 2: return 8;  // AVX512
    case 1: return 4;  // AVX2
    case 3: return 2;  // NEON
    default: return 1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchDecisionEngine.
// ---------------------------------------------------------------------------

BatchDecisionEngine::BatchDecisionEngine(
    std::vector<const PolicyEngine*> engines, Mode mode, ArenaLayout layout,
    Kernel kernel)
    : engines_(std::move(engines)),
      mode_(mode),
      layout_(layout),
      kernel_choice_(kernel),
      vec_kernel_(pick_vector_kernel(kernel, mode)),
      active_kernel_(vec_kernel_) {
  SPEEDQM_REQUIRE(!engines_.empty(), "BatchDecisionEngine: need at least one task");
  for (const auto* e : engines_) {
    SPEEDQM_REQUIRE(e != nullptr, "BatchDecisionEngine: null engine");
  }
  nq_ = engines_.front()->num_levels();
  for (const auto* e : engines_) {
    SPEEDQM_REQUIRE(e->num_levels() == nq_,
                    "BatchDecisionEngine: tasks must share the quality level count");
  }

  const std::size_t T = engines_.size();
  n_.resize(T);
  hint_.assign(T, -1);
  for (std::size_t task = 0; task < T; ++task) {
    n_[task] = engines_[task]->num_states();
  }

  if (mode_ != Mode::kTabled) {
    inc_.reserve(T);
    for (std::size_t task = 0; task < T; ++task) {
      inc_.push_back(std::make_unique<IncrementalTdState>(*engines_[task]));
    }
  } else if (layout_ == ArenaLayout::kCompressed) {
    ctable_.reserve(T);
    for (std::size_t task = 0; task < T; ++task) {
      ctable_.emplace_back(*engines_[task]);
    }
  } else {
    // One arena for every task's flat tD table (row-major [state][quality],
    // the TabledNumericManager / RegionCompiler layout) — back to back so
    // the sweep's working set is contiguous. Guard entries pad both ends:
    // the vector kernels read each lane's whole [h-1, h+2] neighbourhood
    // window with one unaligned load, and the window of a cold hint at the
    // first row (h = -1) or of a just-finished task at the arena's last
    // table (s = n) must stay inside the allocation. Bounds: front, h-1
    // with h >= -1 reaches 2 entries before a row; back, s = n with
    // h <= nq-1 reaches nq + 1 entries past a table's end.
    const std::size_t front_pad = 2;
    const std::size_t back_pad = static_cast<std::size_t>(nq_) + 2;
    table_.assign(T, nullptr);
    std::size_t total = 0;
    for (std::size_t task = 0; task < T; ++task) {
      total += n_[task] * static_cast<std::size_t>(nq_);
    }
    arena_.reserve(front_pad + total + back_pad);
    arena_.assign(front_pad, 0);
    std::vector<std::size_t> offset(T);
    for (std::size_t task = 0; task < T; ++task) {
      offset[task] = arena_.size();
      const std::vector<TimeNs> td = engines_[task]->td_table();
      arena_.insert(arena_.end(), td.begin(), td.end());
    }
    arena_.insert(arena_.end(), back_pad, 0);
    // Bases assigned after all inserts (reserve makes them stable anyway,
    // but do not depend on it).
    for (std::size_t task = 0; task < T; ++task) {
      table_[task] = arena_.data() + offset[task];
    }
  }
}

/// The tabled per-task decision through the shared prefix search — the
/// canonical reference the sweep's warm fast path must match probe for
/// probe (same outcomes, same Decision.ops). This is the same call the
/// sequential TabledNumericManager path bottoms out in, which is what
/// keeps batched decisions bit-identical to it.
Decision BatchDecisionEngine::decide_row(const TimeNs* row, Quality hint,
                                         TimeNs t) const {
  return decide_max_quality(nq_ - 1, hint, [&](Quality q, std::uint64_t*) {
    return row[q] >= t;
  });
}

std::uint64_t BatchDecisionEngine::decide_all_incremental(
    const StateIndex* states, TimeNs t, Decision* out) {
  const std::size_t T = engines_.size();
  std::uint64_t total = 0;
  for (std::size_t task = 0; task < T; ++task) {
    const StateIndex s = states[task];
    if (s >= n_[task]) continue;
    const Decision d =
        engines_[task]->decide_incremental(*inc_[task], s, t, hint_[task]);
    hint_[task] = d.quality;
    out[task] = d;
    total += d.ops;
  }
  return total;
}

std::uint64_t BatchDecisionEngine::decide_all(const StateIndex* states,
                                              TimeNs t, Decision* out) {
  if (mode_ == Mode::kIncremental) {
    return decide_all_incremental(states, t, out);
  }
  SweepArgs args{n_.data(), hint_.data(), engines_.size(),
                 nq_ - 1,   states,       t,
                 out,       nullptr};
  // Occupancy-adaptive dispatch (kAuto with a usable vector kernel): one
  // sweep in 16 records SweepStats, and the following sweeps run whichever
  // kernel the sample justifies — vector only when enough warm live lanes
  // fill a group (live >= kLanes, at least half the live lanes warm);
  // otherwise the branchy scalar kernel's early exits win (drained mixes,
  // reset-heavy streams). Sampling is opt-in per sweep so the unsampled
  // hot path never touches the counters. sweep_seq_ survives reset() on
  // purpose: a reset makes every lane cold for exactly one sweep, and
  // pinning samples to that sweep would lock cyclic workloads to scalar.
  SweepStats sample;
  const bool sampling = kernel_choice_ == Kernel::kAuto && vec_kernel_ != 0 &&
                        (sweep_seq_++ & 0xF) == 0;
  if (sampling) args.stats = &sample;
  const int kid = active_kernel_;
  std::uint64_t ops;
  if (layout_ == ArenaLayout::kCompressed) {
    const CompressedArena arena{ctable_.data()};
    switch (kid) {
      case 2:
        ops = sweep_detail::sweep_compressed_avx512(arena, args);
        break;
      case 1:
        ops = sweep_detail::sweep_compressed_avx2(arena, args);
        break;
#if SPEEDQM_SIMD_NEON
      case 3:
        ops = args.stats
                  ? sweep_detail::sweep_staged<CompressedArena, NeonBackend,
                                               true>(arena, args)
                  : sweep_detail::sweep_staged<CompressedArena, NeonBackend>(
                        arena, args);
        break;
#endif
      default:
        ops = args.stats
                  ? sweep_detail::sweep_staged<CompressedArena, ScalarBackend,
                                               true>(arena, args)
                  : sweep_detail::sweep_staged<CompressedArena, ScalarBackend>(
                        arena, args);
        break;
    }
  } else {
    const FlatArena arena{table_.data(), static_cast<std::size_t>(nq_)};
    switch (kid) {
      case 2:
        ops = sweep_detail::sweep_flat_avx512(arena, args);
        break;
      case 1:
        ops = sweep_detail::sweep_flat_avx2(arena, args);
        break;
#if SPEEDQM_SIMD_NEON
      case 3:
        ops = args.stats
                  ? sweep_detail::sweep_staged<FlatArena, NeonBackend, true>(
                        arena, args)
                  : sweep_detail::sweep_staged<FlatArena, NeonBackend>(arena,
                                                                       args);
        break;
#endif
      default:
        ops = args.stats
                  ? sweep_detail::sweep_staged<FlatArena, ScalarBackend, true>(
                        arena, args)
                  : sweep_detail::sweep_staged<FlatArena, ScalarBackend>(arena,
                                                                         args);
        break;
    }
  }
  if (sampling) {
    stats_ = sample;
    const std::uint64_t lanes = kernel_lanes(vec_kernel_);
    active_kernel_ =
        (sample.live >= lanes && sample.warm * 2 >= sample.live)
            ? vec_kernel_
            : 0;
  }
  return ops;
}

Decision BatchDecisionEngine::decide_one(std::size_t task, StateIndex s,
                                         TimeNs t) {
  SPEEDQM_REQUIRE(task < engines_.size(), "decide_one: task out of range");
  SPEEDQM_REQUIRE(s < n_[task], "decide_one: state out of range");
  Decision d;
  if (mode_ == Mode::kIncremental) {
    d = engines_[task]->decide_incremental(*inc_[task], s, t, hint_[task]);
  } else if (layout_ == ArenaLayout::kCompressed) {
    d = ctable_[task].decide_warm(s, t, hint_[task]);
  } else {
    d = decide_row(table_[task] + s * static_cast<std::size_t>(nq_),
                   hint_[task], t);
  }
  hint_[task] = d.quality;
  return d;
}

TimeNs BatchDecisionEngine::td(std::size_t task, StateIndex s, Quality q) const {
  SPEEDQM_REQUIRE(mode_ == Mode::kTabled, "td: tabled mode only");
  SPEEDQM_REQUIRE(task < engines_.size(), "td: task out of range");
  SPEEDQM_REQUIRE(s < n_[task], "td: state out of range");
  SPEEDQM_REQUIRE(q >= 0 && q < nq_, "td: quality out of range");
  if (layout_ == ArenaLayout::kCompressed) return ctable_[task].td(s, q);
  return table_[task][s * static_cast<std::size_t>(nq_) +
                      static_cast<std::size_t>(q)];
}

void BatchDecisionEngine::reset() {
  hint_.assign(hint_.size(), -1);
  for (auto& state : inc_) state->rewind();
}

std::size_t BatchDecisionEngine::memory_bytes() const {
  std::size_t bytes = arena_.size() * sizeof(TimeNs);  // guard pads included
  for (const auto& table : ctable_) bytes += table.memory_bytes();
  for (const auto& state : inc_) bytes += state->memory_bytes();
  return bytes;
}

std::size_t BatchDecisionEngine::num_table_integers() const {
  // The logical |A| * |Q| metric, layout-independent (memory_bytes reports
  // what the layout actually stores; the flat arena's guard padding is not
  // table content).
  std::size_t integers = 0;
  if (mode_ == Mode::kTabled && layout_ == ArenaLayout::kFlat) {
    for (std::size_t task = 0; task < n_.size(); ++task) {
      integers += n_[task] * static_cast<std::size_t>(nq_);
    }
  }
  for (const auto& table : ctable_) integers += table.num_integers();
  return integers;
}

// ---------------------------------------------------------------------------
// Epoch managers.
// ---------------------------------------------------------------------------

MultiTaskEpochManager::MultiTaskEpochManager(const ComposedSystem& system)
    : system_(&system),
      next_local_(system.num_tasks(), 0),
      cached_(system.num_tasks()),
      fresh_(system.num_tasks(), 0) {}

Decision MultiTaskEpochManager::decide(StateIndex s, TimeNs t) {
  const TaskRef& ref = system_->origin(s);
  SPEEDQM_ASSERT(ref.local_action == next_local_[ref.task],
                 "multi-task epoch manager: composite progression out of order");
  std::uint64_t epoch_ops = 0;
  if (!fresh_[ref.task]) {
    // Composite decision point: every unfinished task is (re-)decided at
    // the current observed time. Tasks whose previous decision was still
    // cached get a fresher one — time has advanced since theirs was taken.
    epoch_ops = refresh(next_local_.data(), t, cached_.data());
    for (std::size_t task = 0; task < fresh_.size(); ++task) {
      fresh_[task] = next_local_[task] < system_->task_size(task) ? 1 : 0;
    }
    ++epochs_;
  }
  Decision d = cached_[ref.task];
  d.relax_steps = 1;
  d.ops = epoch_ops;  // whole epoch charged to the refreshing call
  fresh_[ref.task] = 0;
  ++next_local_[ref.task];
  return d;
}

void MultiTaskEpochManager::reset() {
  next_local_.assign(next_local_.size(), 0);
  fresh_.assign(fresh_.size(), 0);
  epochs_ = 0;
  reset_engines();
}

BatchMultiTaskManager::BatchMultiTaskManager(
    const ComposedSystem& system, std::vector<const PolicyEngine*> engines,
    BatchDecisionEngine::Mode mode, ArenaLayout layout,
    BatchDecisionEngine::Kernel kernel)
    : MultiTaskEpochManager(system),
      engine_(std::move(engines), mode, layout, kernel) {
  SPEEDQM_REQUIRE(engine_.num_tasks() == system.num_tasks(),
                  "BatchMultiTaskManager: one engine per task required");
  for (std::size_t task = 0; task < engine_.num_tasks(); ++task) {
    SPEEDQM_REQUIRE(engine_.num_states(task) == system.task_size(task),
                    "BatchMultiTaskManager: engine does not span its task");
  }
}

std::string BatchMultiTaskManager::name() const {
  std::string name = engine_.mode() == BatchDecisionEngine::Mode::kTabled
                         ? "batch-multitask-tabled"
                         : "batch-multitask-incremental";
  if (engine_.mode() == BatchDecisionEngine::Mode::kTabled &&
      engine_.layout() == ArenaLayout::kCompressed) {
    name += "-compressed";
  }
  return name;
}

SequentialMultiTaskManager::SequentialMultiTaskManager(
    const ComposedSystem& system, std::vector<const PolicyEngine*> engines,
    BatchDecisionEngine::Mode mode, ArenaLayout layout)
    : MultiTaskEpochManager(system), mode_(mode) {
  SPEEDQM_REQUIRE(engines.size() == system.num_tasks(),
                  "SequentialMultiTaskManager: one engine per task required");
  managers_.reserve(engines.size());
  sizes_.reserve(engines.size());
  for (std::size_t task = 0; task < engines.size(); ++task) {
    const PolicyEngine* engine = engines[task];
    SPEEDQM_REQUIRE(engine != nullptr, "SequentialMultiTaskManager: null engine");
    SPEEDQM_REQUIRE(engine->num_states() == system.task_size(task),
                    "SequentialMultiTaskManager: engine does not span its task");
    if (mode == BatchDecisionEngine::Mode::kTabled) {
      managers_.push_back(std::make_unique<TabledNumericManager>(*engine, layout));
    } else {
      managers_.push_back(std::make_unique<NumericManager>(
          *engine, NumericManager::Strategy::kIncremental));
    }
    sizes_.push_back(engine->num_states());
  }
}

std::uint64_t SequentialMultiTaskManager::refresh(const StateIndex* states,
                                                  TimeNs t, Decision* out) {
  std::uint64_t total = 0;
  for (std::size_t task = 0; task < managers_.size(); ++task) {
    const StateIndex s = states[task];
    if (s >= sizes_[task]) continue;
    const Decision d = managers_[task]->decide(s, t);
    out[task] = d;
    total += d.ops;
  }
  return total;
}

void SequentialMultiTaskManager::reset_engines() {
  for (auto& manager : managers_) manager->reset();
}

std::string SequentialMultiTaskManager::name() const {
  return mode_ == BatchDecisionEngine::Mode::kTabled
             ? "seq-multitask-tabled"
             : "seq-multitask-incremental";
}

std::size_t SequentialMultiTaskManager::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& manager : managers_) bytes += manager->memory_bytes();
  return bytes;
}

}  // namespace speedqm
