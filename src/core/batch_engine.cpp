#include "core/batch_engine.hpp"

#include "core/decision_search.hpp"
#include "core/fast_manager.hpp"
#include "core/numeric_manager.hpp"
#include "support/contract.hpp"

namespace speedqm {

BatchDecisionEngine::BatchDecisionEngine(
    std::vector<const PolicyEngine*> engines, Mode mode)
    : engines_(std::move(engines)), mode_(mode) {
  SPEEDQM_REQUIRE(!engines_.empty(), "BatchDecisionEngine: need at least one task");
  for (const auto* e : engines_) {
    SPEEDQM_REQUIRE(e != nullptr, "BatchDecisionEngine: null engine");
  }
  nq_ = engines_.front()->num_levels();
  for (const auto* e : engines_) {
    SPEEDQM_REQUIRE(e->num_levels() == nq_,
                    "BatchDecisionEngine: tasks must share the quality level count");
  }

  const std::size_t T = engines_.size();
  n_.resize(T);
  hint_.assign(T, -1);
  table_.assign(T, nullptr);
  for (std::size_t task = 0; task < T; ++task) {
    n_[task] = engines_[task]->num_states();
  }

  if (mode_ == Mode::kTabled) {
    // One arena for every task's flat tD table (row-major [state][quality],
    // the TabledNumericManager / RegionCompiler layout) — back to back so
    // the sweep's working set is contiguous.
    std::size_t total = 0;
    for (std::size_t task = 0; task < T; ++task) {
      total += n_[task] * static_cast<std::size_t>(nq_);
    }
    arena_.reserve(total);
    std::vector<std::size_t> offset(T);
    for (std::size_t task = 0; task < T; ++task) {
      offset[task] = arena_.size();
      const std::vector<TimeNs> td = engines_[task]->td_table();
      arena_.insert(arena_.end(), td.begin(), td.end());
    }
    // Bases assigned after all inserts (reserve makes them stable anyway,
    // but do not depend on it).
    for (std::size_t task = 0; task < T; ++task) {
      table_[task] = arena_.data() + offset[task];
    }
  } else {
    inc_.reserve(T);
    for (std::size_t task = 0; task < T; ++task) {
      inc_.push_back(std::make_unique<IncrementalTdState>(*engines_[task]));
    }
  }
}

/// The tabled per-task decision through the shared prefix search — the
/// canonical reference decide_all's inline warm fast path must match
/// probe for probe (same outcomes, same Decision.ops). This is the same
/// call the sequential TabledNumericManager path bottoms out in, which is
/// what keeps batched decisions bit-identical to it.
Decision BatchDecisionEngine::decide_row(const TimeNs* row, Quality hint,
                                         TimeNs t) const {
  return decide_max_quality(nq_ - 1, hint, [&](Quality q, std::uint64_t*) {
    return row[q] >= t;
  });
}

std::uint64_t BatchDecisionEngine::decide_all(const StateIndex* states,
                                              TimeNs t, Decision* out) {
  const std::size_t T = engines_.size();
  std::uint64_t total = 0;

  if (mode_ == Mode::kIncremental) {
    for (std::size_t task = 0; task < T; ++task) {
      const StateIndex s = states[task];
      if (s >= n_[task]) continue;
      const Decision d =
          engines_[task]->decide_incremental(*inc_[task], s, t, hint_[task]);
      hint_[task] = d.quality;
      out[task] = d;
      total += d.ops;
    }
    return total;
  }

  // The batched row sweep: per task, a row base load from the SoA cursor
  // arrays and a branch-light warm-neighbourhood resolve — no virtual
  // dispatch, no per-call metadata reloads, and the common steady state
  // reduced to three row loads plus selects (outcomes vary task to task,
  // so data dependencies beat branch prediction here). Outcomes and ops
  // replicate decide_max_quality probe for probe; anything outside the
  // neighbourhood falls back to decide_row (the shared search).
  const auto nq = static_cast<std::size_t>(nq_);
  const Quality qmax = nq_ - 1;
  const TimeNs* const* tables = table_.data();
  const StateIndex* sizes = n_.data();
  Quality* hints = hint_.data();
  for (std::size_t task = 0; task < T; ++task) {
    const StateIndex s = states[task];
    if (s >= sizes[task]) continue;
    const TimeNs* row = tables[task] + s * nq;
    const Quality h = hints[task];
    Decision d;
    if (h >= 0) {
      const bool at_top = h >= qmax;
      const bool at_bottom = h <= kQmin;
      const bool sat_h = row[h] >= t;
      const bool sat_up = !at_top && row[at_top ? h : h + 1] >= t;
      const bool sat_dn = !at_bottom && row[at_bottom ? h : h - 1] >= t;
      if (sat_h) {
        if (at_top || !sat_up) {          // stay at the hint
          d.quality = h;
          d.ops = at_top ? 1 : 2;
        } else if (h + 1 == qmax) {       // one step up hits the top
          d.quality = qmax;
          d.ops = 2;
        } else {
          d = decide_row(row, h, t);      // climbing: shared search
        }
      } else if (at_bottom) {             // qmin fails: infeasible
        d.quality = kQmin;
        d.feasible = false;
        d.ops = 1;
      } else if (sat_dn) {                // one step down
        d.quality = h - 1;
        d.ops = 2;
      } else {
        d = decide_row(row, h, t);        // falling: shared search
      }
    } else {
      d = decide_row(row, h, t);          // cold start
    }
    hints[task] = d.quality;
    out[task] = d;
    total += d.ops;
  }
  return total;
}

Decision BatchDecisionEngine::decide_one(std::size_t task, StateIndex s,
                                         TimeNs t) {
  SPEEDQM_REQUIRE(task < engines_.size(), "decide_one: task out of range");
  SPEEDQM_REQUIRE(s < n_[task], "decide_one: state out of range");
  Decision d;
  if (mode_ == Mode::kIncremental) {
    d = engines_[task]->decide_incremental(*inc_[task], s, t, hint_[task]);
  } else {
    d = decide_row(table_[task] + s * static_cast<std::size_t>(nq_),
                   hint_[task], t);
  }
  hint_[task] = d.quality;
  return d;
}

TimeNs BatchDecisionEngine::td(std::size_t task, StateIndex s, Quality q) const {
  SPEEDQM_REQUIRE(mode_ == Mode::kTabled, "td: tabled mode only");
  SPEEDQM_REQUIRE(task < engines_.size(), "td: task out of range");
  SPEEDQM_REQUIRE(s < n_[task], "td: state out of range");
  SPEEDQM_REQUIRE(q >= 0 && q < nq_, "td: quality out of range");
  return table_[task][s * static_cast<std::size_t>(nq_) +
                      static_cast<std::size_t>(q)];
}

void BatchDecisionEngine::reset() {
  hint_.assign(hint_.size(), -1);
  for (auto& state : inc_) state->rewind();
}

std::size_t BatchDecisionEngine::memory_bytes() const {
  std::size_t bytes = arena_.size() * sizeof(TimeNs);
  for (const auto& state : inc_) bytes += state->memory_bytes();
  return bytes;
}

std::size_t BatchDecisionEngine::num_table_integers() const {
  return arena_.size();
}

// ---------------------------------------------------------------------------
// Epoch managers.
// ---------------------------------------------------------------------------

MultiTaskEpochManager::MultiTaskEpochManager(const ComposedSystem& system)
    : system_(&system),
      next_local_(system.num_tasks(), 0),
      cached_(system.num_tasks()),
      fresh_(system.num_tasks(), 0) {}

Decision MultiTaskEpochManager::decide(StateIndex s, TimeNs t) {
  const TaskRef& ref = system_->origin(s);
  SPEEDQM_ASSERT(ref.local_action == next_local_[ref.task],
                 "multi-task epoch manager: composite progression out of order");
  std::uint64_t epoch_ops = 0;
  if (!fresh_[ref.task]) {
    // Composite decision point: every unfinished task is (re-)decided at
    // the current observed time. Tasks whose previous decision was still
    // cached get a fresher one — time has advanced since theirs was taken.
    epoch_ops = refresh(next_local_.data(), t, cached_.data());
    for (std::size_t task = 0; task < fresh_.size(); ++task) {
      fresh_[task] = next_local_[task] < system_->task_size(task) ? 1 : 0;
    }
    ++epochs_;
  }
  Decision d = cached_[ref.task];
  d.relax_steps = 1;
  d.ops = epoch_ops;  // whole epoch charged to the refreshing call
  fresh_[ref.task] = 0;
  ++next_local_[ref.task];
  return d;
}

void MultiTaskEpochManager::reset() {
  next_local_.assign(next_local_.size(), 0);
  fresh_.assign(fresh_.size(), 0);
  epochs_ = 0;
  reset_engines();
}

BatchMultiTaskManager::BatchMultiTaskManager(
    const ComposedSystem& system, std::vector<const PolicyEngine*> engines,
    BatchDecisionEngine::Mode mode)
    : MultiTaskEpochManager(system), engine_(std::move(engines), mode) {
  SPEEDQM_REQUIRE(engine_.num_tasks() == system.num_tasks(),
                  "BatchMultiTaskManager: one engine per task required");
  for (std::size_t task = 0; task < engine_.num_tasks(); ++task) {
    SPEEDQM_REQUIRE(engine_.num_states(task) == system.task_size(task),
                    "BatchMultiTaskManager: engine does not span its task");
  }
}

std::string BatchMultiTaskManager::name() const {
  return engine_.mode() == BatchDecisionEngine::Mode::kTabled
             ? "batch-multitask-tabled"
             : "batch-multitask-incremental";
}

SequentialMultiTaskManager::SequentialMultiTaskManager(
    const ComposedSystem& system, std::vector<const PolicyEngine*> engines,
    BatchDecisionEngine::Mode mode)
    : MultiTaskEpochManager(system), mode_(mode) {
  SPEEDQM_REQUIRE(engines.size() == system.num_tasks(),
                  "SequentialMultiTaskManager: one engine per task required");
  managers_.reserve(engines.size());
  sizes_.reserve(engines.size());
  for (std::size_t task = 0; task < engines.size(); ++task) {
    const PolicyEngine* engine = engines[task];
    SPEEDQM_REQUIRE(engine != nullptr, "SequentialMultiTaskManager: null engine");
    SPEEDQM_REQUIRE(engine->num_states() == system.task_size(task),
                    "SequentialMultiTaskManager: engine does not span its task");
    if (mode == BatchDecisionEngine::Mode::kTabled) {
      managers_.push_back(std::make_unique<TabledNumericManager>(*engine));
    } else {
      managers_.push_back(std::make_unique<NumericManager>(
          *engine, NumericManager::Strategy::kIncremental));
    }
    sizes_.push_back(engine->num_states());
  }
}

std::uint64_t SequentialMultiTaskManager::refresh(const StateIndex* states,
                                                  TimeNs t, Decision* out) {
  std::uint64_t total = 0;
  for (std::size_t task = 0; task < managers_.size(); ++task) {
    const StateIndex s = states[task];
    if (s >= sizes_[task]) continue;
    const Decision d = managers_[task]->decide(s, t);
    out[task] = d;
    total += d.ops;
  }
  return total;
}

void SequentialMultiTaskManager::reset_engines() {
  for (auto& manager : managers_) manager->reset();
}

std::string SequentialMultiTaskManager::name() const {
  return mode_ == BatchDecisionEngine::Mode::kTabled
             ? "seq-multitask-tabled"
             : "seq-multitask-incremental";
}

std::size_t SequentialMultiTaskManager::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& manager : managers_) bytes += manager->memory_bytes();
  return bytes;
}

}  // namespace speedqm
