// Incremental tD evaluation: O(1) amortized per decision as s advances.
//
// The numeric Quality Manager pays a full O(n) td_online forward scan per
// quality probe. But a controlled run probes states in the order the cycle
// visits them — s advances one action at a time — and the mixed policy's
// interval structure
//
//   tD(s, q) = Av_q(s) + min_{k >= s, D(k) finite} [ G(k) - max_{s<=j<=k} M(j) ]
//   M(j) = Av_q(j) + Cwc(j, q) + SufMin(j+1),   G(k) = D(k) + SufMin(k+1)
//
// makes the inner max a *record chain*: the positions j that can carry the
// max for some k are exactly the left-to-right strict maxima of M over
// [s, n). Advancing s to s+1 removes the chain's head and reveals the
// records it was hiding — and those are exactly the segments the backward
// monotone-stack sweep of PolicyEngine::td_table_mixed popped when it
// pushed position s. IncrementalTdState therefore compiles, per probed
// quality, that sweep's pop *forest* once (O(n), the same arithmetic as
// td_table_mixed so values stay bit-identical), and then replays it
// forward: each advance pops the head segment and restores its children,
// each segment is restored at most once per cycle, so a full n-state run
// costs O(n) total — O(1) amortized per decision — with a live O(1) read
// of tD(s, q) at the chain head. No O(n * |Q|) table is precomputed or
// stored: a lane exists only for qualities the search actually probed
// (2-3 in the warm steady state).
//
// The safe policy's tD does not depend on the inner max at all (its CD is
// determined by the first action); one quality-independent suffix-min
// array serves every probe in O(1). The average policy reuses the lane
// machinery with M == 0, which degenerates the forest into a suffix-min
// chain.
//
// Contract: per lane, probes are O(1) amortized while s is non-decreasing
// (the executor's order). Probing an earlier state rewinds the lane to its
// compiled state-0 chain and re-advances — correct, but O(s). rewind()
// re-arms every lane for a new cycle without recompiling anything.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "core/types.hpp"
#include "support/time.hpp"

namespace speedqm {

class IncrementalTdState {
 public:
  /// Binds to an engine; compiles nothing until the first probe.
  explicit IncrementalTdState(const PolicyEngine& engine);

  const PolicyEngine& engine() const { return *engine_; }

  /// tD(s, q), bit-identical to engine().td_online(s, q). Adds the work
  /// performed (amortized O(1) on monotone s; O(n) when a lane is first
  /// compiled) to *ops when non-null, matching the manager ops convention.
  TimeNs td(StateIndex s, Quality q, std::uint64_t* ops = nullptr);

  /// The decision Γ(s, t) through the shared prefix search
  /// (PolicyEngine::decide_incremental); bit-identical to decide_scan.
  Decision decide(StateIndex s, TimeNs t, Quality warm_hint = -1);

  /// Re-arms every compiled lane at state 0 (start of a new cycle). Keeps
  /// the compiled forests: O(root-chain length) per lane, no recompilation.
  void rewind();

  /// Drops all compiled lanes and arrays (next probes recompile).
  void clear();

  /// Number of quality lanes compiled so far (<= |Q|).
  std::size_t num_compiled_lanes() const;

  /// Bytes held by compiled lanes — the engine's whole memory footprint
  /// (compare TabledNumericManager's n * |Q| integers).
  std::size_t memory_bytes() const;

 private:
  /// One chain element: a maximal run of k positions sharing the same
  /// running max of M, with the best G - M achievable from here rightward.
  struct Entry {
    std::uint32_t pos = 0;
    TimeNs suffix_best = kTimePlusInf;
  };

  /// Per-quality compiled forest + live chain for one quality level.
  struct Lane {
    // Compiled once per quality (positions 0..n-1):
    std::vector<TimeNs> m;                    ///< M(j)
    std::vector<TimeNs> min_g;                ///< min G over the segment [j, NGE(j))
    std::vector<std::uint32_t> children;      ///< flat pop-forest child lists
    std::vector<std::uint32_t> child_start;   ///< per position into children
    std::vector<std::uint32_t> child_count;   ///< per position
    std::vector<Entry> roots;                 ///< the chain at state 0
    // Live state:
    std::vector<Entry> stack;                 ///< current chain, back = head
    StateIndex pos = 0;                       ///< state the chain head is at

    std::size_t memory_bytes() const;
  };

  Lane& lane_for(Quality q, std::uint64_t* ops);
  void compile_lane(Lane& lane, Quality q, std::uint64_t* ops) const;
  void advance_lane(Lane& lane, StateIndex s, std::uint64_t* ops) const;
  void ensure_safe_suffix(std::uint64_t* ops);

  const PolicyEngine* engine_;
  std::vector<std::unique_ptr<Lane>> lanes_;  ///< indexed by quality
  std::vector<TimeNs> safe_suffix_min_g_;     ///< kSafe: min_{k>=s} G(k)
};

}  // namespace speedqm
