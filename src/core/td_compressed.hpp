// Delta-coded tD arena: the flat 64-bit [state][quality] table at ~2.2-2.4x
// less memory, bit-exact.
//
// Two monotonicity properties make tD tables compressible without loss:
//   * along the quality axis, tD(s, .) is non-increasing (Proposition 2),
//     so a row is its first entry (the anchor) minus non-negative deltas;
//   * along the state axis, tD(., q) is non-decreasing — CD(s..k, q) >=
//     CD(s+1..k, q) for every deadline candidate k (completing an action
//     can only relax the remaining-time border), so adjacent rows differ
//     by roughly one action's cost, orders of magnitude below the row's
//     own delta span.
//
// Measured on the bench grid (synthetic mixed policy, n in {512..4096},
// |Q| in {16..64}): row-anchor deltas need ~28-31 bits — a flat "anchor
// plus 32-bit deltas" layout can never beat 2x against 64-bit entries —
// while adjacent-row differences at fixed quality all fit in 24 bits.
// The layout therefore blocks rows in groups of kBlockRows states:
//
//   block  = | leader row                | follower rows (kBlockRows-1)  |
//            | i64 anchor = tD(s0, 0)    |                               |
//            | u32 deltas anchor-tD(s0,q)| residuals tD(s,q) - tD(s0,q), |
//            | (u64 plane when the row   | width chosen PER BLOCK from   |
//            |  spans >= 2^32, e.g. inf) | 16/24/32 bits (64 = fallback) |
//
// Follower residuals are >= 0 by the state-axis monotonicity; arbitrary
// tables (deserialized, hand-built) that violate it still round-trip
// exactly through the signed 64-bit fallback width. Decoding a probe is
// anchor - leader_delta[q] (+ residual[q]) — two narrow loads and integer
// adds, exact by construction, so every decision path built on top
// (TabledNumericManager, BatchDecisionEngine) stays bit-identical to the
// flat arena, Decision.ops included.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <vector>

#include "core/policy.hpp"
#include "core/types.hpp"

namespace speedqm {

/// How a tD arena is stored by the tabled decision engines.
enum class ArenaLayout {
  kFlat,        ///< row-major 64-bit entries (the PR-1 layout)
  kCompressed,  ///< block-leader delta coding (this file)
};

const char* to_string(ArenaLayout layout);

class CompressedTdTable {
 public:
  /// States per block: one leader row + kBlockRows-1 residual rows.
  static constexpr StateIndex kBlockRows = 4;

  /// Residual width codes (bytes per follower entry).
  enum : std::uint8_t { kWidth16 = 2, kWidth24 = 3, kWidth32 = 4, kWidth64 = 8 };

  /// Compresses the engine's tD table (offline step, one td_table sweep).
  explicit CompressedTdTable(const PolicyEngine& engine);

  /// Compresses an existing flat row-major [state][quality] table.
  CompressedTdTable(StateIndex num_states, int num_levels,
                    const std::vector<TimeNs>& flat);

  StateIndex num_states() const { return n_; }
  int num_levels() const { return nq_; }
  Quality qmax() const { return nq_ - 1; }

  /// The stored border tD(s, q), exactly as in the flat table (checked).
  TimeNs td(StateIndex s, Quality q) const;

  /// Decoded view of one state's row for the decision hot path: resolves
  /// the block once, then each value(q) is two narrow loads + adds.
  class RowRef {
   public:
    TimeNs value(Quality q) const {
      // All arithmetic in unsigned 64-bit: deltas/residuals are stored as
      // two's-complement differences, so wrapping subtraction and addition
      // reconstruct the original signed value exactly for ANY input table
      // (sentinels included) with no signed-overflow UB.
      std::uint64_t v = static_cast<std::uint64_t>(anchor_);
      v -= ld_wide_ ? ld64_[q] : static_cast<std::uint64_t>(ld32_[q]);
      if (resid_ != nullptr) {
        // Unaligned narrow read; the arena is padded so the 8-byte load
        // never runs off the buffer. kWidth64 stores the signed residual's
        // raw two's-complement bits (fallback for non-monotone tables).
        std::uint64_t raw;
        std::memcpy(&raw, resid_ + static_cast<std::size_t>(q) * rw_, 8);
        if (rw_ != kWidth64) raw &= (std::uint64_t{1} << (8 * rw_)) - 1;
        v += raw;
      }
      return static_cast<TimeNs>(v);
    }

    /// Block-decodes the four consecutive entries [q0, q0+3] — the vector
    /// kernels' neighbourhood window — in one pass over the planes: one
    /// leader-delta fetch and one shared residual unpack instead of four
    /// independent value() decodes. q0 may be -1 and q0+3 may run past the
    /// row's last entry: the arena planes carry front/back guard pads
    /// sized for exactly these loads, and callers discard the out-of-row
    /// lanes (the per-ISA decode_window helpers rely on the same pads).
    void window4(Quality q0, TimeNs out[4]) const {
      const std::uint64_t base = static_cast<std::uint64_t>(anchor_);
      std::uint64_t ld[4];
      if (ld_wide_) {
        std::memcpy(ld, ld64_ + q0, sizeof ld);
      } else {
        std::uint32_t narrow[4];
        std::memcpy(narrow, ld32_ + q0, sizeof narrow);
        for (int i = 0; i < 4; ++i) ld[i] = narrow[i];
      }
      if (resid_ == nullptr) {
        for (int i = 0; i < 4; ++i) out[i] = static_cast<TimeNs>(base - ld[i]);
        return;
      }
      const std::uint8_t* re = resid_ + static_cast<std::ptrdiff_t>(q0) * rw_;
      const std::uint64_t mask =
          rw_ == kWidth64 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << (8 * rw_)) - 1;
      for (int i = 0; i < 4; ++i) {
        std::uint64_t raw;
        std::memcpy(&raw, re + i * rw_, 8);
        out[i] = static_cast<TimeNs>(base - ld[i] + (raw & mask));
      }
    }

    // Raw plane access for the per-ISA vector decoders (the decode_window
    // helpers in core/batch_sweep_avx2.cpp / _avx512.cpp): the same fields
    // value() reads, exposed so a whole window decodes in registers.
    TimeNs anchor() const { return anchor_; }
    bool wide() const { return ld_wide_; }
    const std::uint32_t* ld32() const { return ld32_; }
    const std::uint64_t* ld64() const { return ld64_; }
    const std::uint8_t* resid() const { return resid_; }
    int width() const { return rw_; }

   private:
    friend class CompressedTdTable;
    TimeNs anchor_ = 0;
    const std::uint32_t* ld32_ = nullptr;
    const std::uint64_t* ld64_ = nullptr;
    const std::uint8_t* resid_ = nullptr;  ///< null for the leader row
    std::uint8_t rw_ = kWidth32;
    bool ld_wide_ = false;
  };

  RowRef row(StateIndex s) const;

  /// The warm-started shared-search decision over the compressed row —
  /// probe for probe the same search as QualityRegionTable::decide_warm,
  /// so decisions (and ops) are bit-identical to the flat layout.
  Decision decide_warm(StateIndex s, TimeNs t, Quality warm_hint,
                       std::uint64_t* ops = nullptr) const;

  /// Exact reconstruction of the flat row-major table.
  std::vector<TimeNs> to_flat() const;

  /// Logical integer count n * |Q| (the paper's table-size metric).
  std::size_t num_integers() const {
    return n_ * static_cast<std::size_t>(nq_);
  }
  /// Actual stored bytes: block metadata + leader planes + residuals.
  std::size_t memory_bytes() const;
  /// What the flat 64-bit layout would occupy (the compression baseline).
  static std::size_t flat_bytes(StateIndex num_states, int num_levels) {
    return num_states * static_cast<std::size_t>(num_levels) * sizeof(TimeNs);
  }

  // --- Serialization body (RegionCompiler writes the magic/version/dims
  // --- header around these; both throw std::runtime_error on bad input).
  void save_body(std::ostream& out) const;
  static CompressedTdTable load_body(std::istream& in, StateIndex num_states,
                                     int num_levels);

 private:
  struct Block {
    TimeNs anchor = 0;         ///< leader row's tD(s0, 0)
    std::uint32_t ld_off = 0;  ///< element offset into ld32_ / ld64_
    std::uint32_t re_off = 0;  ///< byte offset into resid_
    std::uint8_t rw = kWidth32;  ///< follower residual width (bytes)
    std::uint8_t ld_wide = 0;    ///< leader deltas in the u64 plane
  };

  CompressedTdTable() = default;
  void build(const std::vector<TimeNs>& flat);

  StateIndex n_ = 0;
  int nq_ = 0;
  std::vector<Block> blocks_;
  std::vector<std::uint32_t> ld32_;   ///< leader-delta plane (narrow blocks)
  std::vector<std::uint64_t> ld64_;   ///< leader-delta plane (wide blocks)
  std::vector<std::uint8_t> resid_;   ///< packed little-endian residuals
};

}  // namespace speedqm
