#include "core/timing_model.hpp"

#include <cmath>

#include "support/contract.hpp"

namespace speedqm {

std::size_t TimingModel::idx(ActionIndex i, Quality q) const {
  SPEEDQM_REQUIRE(i < n_, "TimingModel: action index out of range");
  SPEEDQM_REQUIRE(valid_quality(q), "TimingModel: quality out of range");
  return i * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q);
}

std::size_t TimingModel::pidx(StateIndex i, Quality q) const {
  SPEEDQM_REQUIRE(i <= n_, "TimingModel: prefix index out of range");
  SPEEDQM_REQUIRE(valid_quality(q), "TimingModel: quality out of range");
  return i * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q);
}

TimingModel::TimingModel(ActionIndex num_actions, int num_levels,
                         std::vector<TimeNs> cav, std::vector<TimeNs> cwc)
    : n_(num_actions), nq_(num_levels), cav_(std::move(cav)), cwc_(std::move(cwc)) {
  SPEEDQM_REQUIRE(n_ > 0, "TimingModel: need at least one action");
  SPEEDQM_REQUIRE(nq_ > 0, "TimingModel: need at least one quality level");
  const std::size_t expected = n_ * static_cast<std::size_t>(nq_);
  SPEEDQM_REQUIRE(cav_.size() == expected, "TimingModel: cav size mismatch");
  SPEEDQM_REQUIRE(cwc_.size() == expected, "TimingModel: cwc size mismatch");
  for (ActionIndex i = 0; i < n_; ++i) {
    for (Quality q = 0; q < nq_; ++q) {
      const std::size_t k = idx(i, q);
      SPEEDQM_REQUIRE(cav_[k] >= 0, "TimingModel: Cav must be non-negative");
      SPEEDQM_REQUIRE(cav_[k] <= cwc_[k], "TimingModel: requires Cav <= Cwc");
      if (q > 0) {
        SPEEDQM_REQUIRE(cav_[k] >= cav_[k - 1],
                        "TimingModel: Cav must be non-decreasing with quality");
        SPEEDQM_REQUIRE(cwc_[k] >= cwc_[k - 1],
                        "TimingModel: Cwc must be non-decreasing with quality");
      }
    }
  }
  build_prefixes();
}

void TimingModel::build_prefixes() {
  const auto nq = static_cast<std::size_t>(nq_);
  cav_prefix_.assign((n_ + 1) * nq, 0);
  cwc_prefix_.assign((n_ + 1) * nq, 0);
  for (ActionIndex i = 0; i < n_; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      cav_prefix_[(i + 1) * nq + q] = cav_prefix_[i * nq + q] + cav_[i * nq + q];
      cwc_prefix_[(i + 1) * nq + q] = cwc_prefix_[i * nq + q] + cwc_[i * nq + q];
    }
  }
  cwc_qmin_suffix_.assign(n_ + 1, 0);
  for (ActionIndex i = n_; i-- > 0;) {
    cwc_qmin_suffix_[i] = cwc_qmin_suffix_[i + 1] + cwc_[i * nq + 0];
  }
  // Quality-major mirrors for the decision hot path (one contiguous run of
  // actions per quality level).
  cav_by_q_.assign(nq * n_, 0);
  cwc_by_q_.assign(nq * n_, 0);
  for (ActionIndex i = 0; i < n_; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      cav_by_q_[q * n_ + i] = cav_[i * nq + q];
      cwc_by_q_[q * n_ + i] = cwc_[i * nq + q];
    }
  }
}

TimeNs TimingModel::cav_range(ActionIndex first, ActionIndex last, Quality q) const {
  if (first > last) return 0;
  SPEEDQM_REQUIRE(last < n_, "cav_range: last out of range");
  return cav_prefix(last + 1, q) - cav_prefix(first, q);
}

TimeNs TimingModel::cwc_range(ActionIndex first, ActionIndex last, Quality q) const {
  if (first > last) return 0;
  SPEEDQM_REQUIRE(last < n_, "cwc_range: last out of range");
  return cwc_prefix(last + 1, q) - cwc_prefix(first, q);
}

TimingModel TimingModel::with_inflated_cwc(double factor) const {
  SPEEDQM_REQUIRE(factor >= 1.0, "with_inflated_cwc: factor must be >= 1");
  std::vector<TimeNs> cwc2(cwc_.size());
  for (std::size_t k = 0; k < cwc_.size(); ++k) {
    cwc2[k] = static_cast<TimeNs>(std::llround(static_cast<double>(cwc_[k]) * factor));
  }
  return TimingModel(n_, nq_, cav_, std::move(cwc2));
}

TimingModel TimingModel::slice(ActionIndex first, ActionIndex last) const {
  SPEEDQM_REQUIRE(first <= last && last < n_, "slice: bad action range");
  const auto nq = static_cast<std::size_t>(nq_);
  std::vector<TimeNs> cav2(cav_.begin() + static_cast<std::ptrdiff_t>(first * nq),
                           cav_.begin() + static_cast<std::ptrdiff_t>((last + 1) * nq));
  std::vector<TimeNs> cwc2(cwc_.begin() + static_cast<std::ptrdiff_t>(first * nq),
                           cwc_.begin() + static_cast<std::ptrdiff_t>((last + 1) * nq));
  return TimingModel(last - first + 1, nq_, std::move(cav2), std::move(cwc2));
}

TimingModelBuilder::TimingModelBuilder(int num_levels) : nq_(num_levels) {
  SPEEDQM_REQUIRE(nq_ > 0, "TimingModelBuilder: need at least one quality level");
}

TimingModelBuilder& TimingModelBuilder::action(const std::vector<TimeNs>& cav,
                                               const std::vector<TimeNs>& cwc) {
  SPEEDQM_REQUIRE(cav.size() == static_cast<std::size_t>(nq_),
                  "TimingModelBuilder: cav arity mismatch");
  SPEEDQM_REQUIRE(cwc.size() == static_cast<std::size_t>(nq_),
                  "TimingModelBuilder: cwc arity mismatch");
  cav_.insert(cav_.end(), cav.begin(), cav.end());
  cwc_.insert(cwc_.end(), cwc.begin(), cwc.end());
  ++count_;
  return *this;
}

TimingModelBuilder& TimingModelBuilder::linear_action(TimeNs cav_min, TimeNs cav_max,
                                                      double wc_factor) {
  SPEEDQM_REQUIRE(cav_min >= 0 && cav_max >= cav_min,
                  "linear_action: requires 0 <= cav_min <= cav_max");
  SPEEDQM_REQUIRE(wc_factor >= 1.0, "linear_action: wc_factor must be >= 1");
  std::vector<TimeNs> cav(static_cast<std::size_t>(nq_));
  std::vector<TimeNs> cwc(static_cast<std::size_t>(nq_));
  for (int q = 0; q < nq_; ++q) {
    const double frac = nq_ == 1 ? 0.0 : static_cast<double>(q) / (nq_ - 1);
    const double c = static_cast<double>(cav_min) +
                     frac * static_cast<double>(cav_max - cav_min);
    cav[static_cast<std::size_t>(q)] = static_cast<TimeNs>(std::llround(c));
    cwc[static_cast<std::size_t>(q)] = static_cast<TimeNs>(std::llround(c * wc_factor));
  }
  return action(cav, cwc);
}

TimingModel TimingModelBuilder::build() && {
  return TimingModel(count_, nq_, std::move(cav_), std::move(cwc_));
}

}  // namespace speedqm
