// Linear-constraint approximation of control relaxation regions — the
// paper's §5 future-work item "using linear constraints to approximate
// control relaxation regions".
//
// The exact table stores 2 integers per (state, quality, r): the borders
// of Proposition 3. Along the schedule those borders are close to affine
// (each completed action shifts them by roughly one action's cost), so a
// pair of lines per (quality, r),
//
//   upper:  Û(s) = a_u + b_u * s   with  Û(s) <= tD,r(s, q)        for all s
//   lower:  L̂(s) = a_l + b_l * s   with  L̂(s) >= tD(s+r-1, q+1)    for all s
//
// is a *conservative* replacement: membership in the approximated region
// implies membership in the exact one, so granting r steps stays safe; the
// only cost is occasionally granting a smaller r than the exact table
// would. Table size drops from 2|A||Q||rho| integers to 4|Q||rho|
// coefficients (e.g. 99,876 -> 168 for the paper configuration).
//
// Fitting maximizes the area under the upper line (resp. above the lower
// line) subject to conservatism; both objectives are concave/convex in the
// slope, solved by ternary search. Slopes are stored in 16.16 fixed point
// and evaluated with floor/ceil division so the conservative direction of
// every rounding step is preserved in exact integer arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/manager.hpp"
#include "core/quality_region.hpp"
#include "core/relaxation_region.hpp"

namespace speedqm {

/// One conservative affine border: value(s) = offset + slope_q16 * s / 2^16
/// (rounded toward the conservative side at evaluation).
struct LinearBorder {
  TimeNs offset = 0;
  std::int64_t slope_q16 = 0;
  bool valid = false;  ///< false when the (q, r) slice could not be fitted
};

/// The compiled linear approximation.
class LinearRelaxationTable {
 public:
  /// Fits conservative lines against an exact RelaxationTable.
  LinearRelaxationTable(const QualityRegionTable& regions,
                        const RelaxationTable& exact);

  const std::vector<int>& rho() const { return rho_; }
  StateIndex num_states() const { return n_; }
  int num_levels() const { return nq_; }

  /// Conservative upper border Û(s) <= tD,r(s, q); kTimeMinusInf when the
  /// slice is invalid or s has fewer than r actions remaining.
  TimeNs upper(StateIndex s, Quality q, int r) const;
  /// Conservative lower border L̂(s) >= tD(s+r-1, q+1); kTimeMinusInf for
  /// q = qmax (no lower constraint).
  TimeNs lower(StateIndex s, Quality q, int r) const;

  /// Conservative membership test (implies exact membership).
  bool contains(StateIndex s, TimeNs t, Quality q, int r) const;

  /// Largest granted r in rho (or 1), scanning rho from the top.
  int max_relaxation(StateIndex s, TimeNs t, Quality q,
                     std::uint64_t* ops = nullptr) const;

  /// Stored coefficient count: 4 * |Q| * |rho| (paper-style size metric;
  /// two borders per (q, r), each an offset + slope pair).
  std::size_t num_integers() const { return 2 * (upper_.size() + lower_.size()); }
  std::size_t memory_bytes() const {
    return (upper_.size() + lower_.size()) * sizeof(LinearBorder);
  }

  /// Mean slack the approximation gives away on the upper border of the
  /// given (q, r) slice (exactness diagnostic; ns).
  double mean_upper_gap(const RelaxationTable& exact, Quality q, int r) const;

 private:
  std::size_t idx(std::size_t r_idx, Quality q) const;
  const LinearBorder& upper_border(std::size_t r_idx, Quality q) const;
  const LinearBorder& lower_border(std::size_t r_idx, Quality q) const;

  StateIndex n_;
  int nq_;
  std::vector<int> rho_;
  std::vector<LinearBorder> upper_;  // [r_idx][quality]
  std::vector<LinearBorder> lower_;
};

/// Quality Manager using quality regions for the level choice and the
/// linear approximation for relaxation grants.
class LinearRelaxationManager final : public QualityManager {
 public:
  LinearRelaxationManager(const QualityRegionTable& regions,
                          const LinearRelaxationTable& linear)
      : regions_(&regions), linear_(&linear) {}

  Decision decide(StateIndex s, TimeNs t) override {
    Decision d = regions_->decide(s, t);
    if (d.feasible) {
      d.relax_steps = linear_->max_relaxation(s, t, d.quality, &d.ops);
    }
    return d;
  }

  std::string name() const override { return "symbolic-linear-relaxation"; }

  std::size_t memory_bytes() const override {
    return regions_->memory_bytes() + linear_->memory_bytes();
  }
  std::size_t num_table_integers() const override {
    return regions_->num_integers() + linear_->num_integers();
  }

 private:
  const QualityRegionTable* regions_;
  const LinearRelaxationTable* linear_;
};

}  // namespace speedqm
