// Quality smoothness metrics (the paper's third QoS requirement).
//
// The paper defers the formal treatment of smoothness to its EMSOFT'05
// companion but relies on it when motivating the mixed policy; the
// ablation benches quantify it with the metrics below.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace speedqm {

/// Fluctuation statistics of a quality-level sequence.
struct SmoothnessReport {
  std::size_t length = 0;
  double mean_quality = 0;
  Quality min_quality = 0;
  Quality max_quality = 0;
  /// Mean |q_{i+1} - q_i| — the primary smoothness metric (0 = constant).
  double mean_abs_jump = 0;
  /// Number of indices where the quality changes.
  std::size_t switches = 0;
  /// Largest single-step change.
  int max_jump = 0;
  /// Standard deviation of the quality sequence.
  double quality_stddev = 0;
};

/// Computes the report; an empty sequence yields a zeroed report.
SmoothnessReport analyze_smoothness(const std::vector<Quality>& qualities);

}  // namespace speedqm
