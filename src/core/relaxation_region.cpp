#include "core/relaxation_region.hpp"

#include <algorithm>

#include "support/contract.hpp"

namespace speedqm {

RelaxationTable::RelaxationTable(const PolicyEngine& engine,
                                 const QualityRegionTable& region,
                                 std::vector<int> rho, ArenaLayout layout)
    : n_(engine.num_states()), nq_(engine.num_levels()), rho_(std::move(rho)) {
  SPEEDQM_REQUIRE(!rho_.empty(), "RelaxationTable: rho must be non-empty");
  for (std::size_t i = 0; i < rho_.size(); ++i) {
    SPEEDQM_REQUIRE(rho_[i] >= 1, "RelaxationTable: steps must be >= 1");
    SPEEDQM_REQUIRE(i == 0 || rho_[i] > rho_[i - 1],
                    "RelaxationTable: rho must be strictly increasing");
  }
  SPEEDQM_REQUIRE(region.num_states() == n_ && region.num_levels() == nq_,
                  "RelaxationTable: region table does not match engine");

  const auto nq = static_cast<std::size_t>(nq_);
  const std::size_t plane = n_ * nq;
  upper_.assign(rho_.size() * plane, kTimeMinusInf);
  lower_.assign(rho_.size() * plane, kTimeMinusInf);

  const TimingModel& tm = engine.timing();
  // For each quality, X(j) = tD(j, q) - W_q(j) with W_q the Cwc prefix sum;
  // then tD,r(s, q) = W_q(s) + min_{j in [s, s+r-1]} X(j).
  //
  // One backward monotone-stack sweep per quality serves every width in rho
  // at once (the same suffix-record chain the incremental tD engine
  // maintains, see core/td_incremental.hpp): sweeping s from n-1 down, the
  // stack holds the suffix-minima record chain of X over [s, n) — positions
  // s = p0 < p1 < ... with X(p0) > X(p1) > ..., so min over [s, e] is X at
  // the last record <= e. Each width keeps a cursor into the shared stack
  // that only moves toward the head as its window edge e = s + r - 1
  // recedes. Stack maintenance is O(n) per quality (amortized, down from
  // one O(n) deque pass per (quality, width)); cursor steps are O(1)
  // amortized per table entry, and the Θ(n * |Q| * |rho|) entry writes are
  // the unavoidable output cost.
  std::vector<TimeNs> x(n_);
  std::vector<StateIndex> chain;       // record positions, back = head (= s)
  std::vector<std::size_t> cursor(rho_.size(), 0);
  for (Quality q = 0; q < nq_; ++q) {
    for (StateIndex j = 0; j < n_; ++j) {
      x[j] = region.td(j, q) - tm.cwc_prefix_unchecked(j, q);
    }
    chain.clear();
    std::fill(cursor.begin(), cursor.end(), 0);
    for (StateIndex s = n_; s-- > 0;) {
      // Equal values collapse onto the leftmost position: every window
      // containing a popped record also contains s, and X(s) <= X(popped),
      // so the window minimum is unchanged.
      while (!chain.empty() && x[chain.back()] >= x[s]) chain.pop_back();
      chain.push_back(s);
      const TimeNs w_s = tm.cwc_prefix_unchecked(s, q);
      for (std::size_t r_idx = 0; r_idx < rho_.size(); ++r_idx) {
        const auto r = static_cast<StateIndex>(rho_[r_idx]);
        if (s + r > n_) continue;  // fewer than r actions remain
        const StateIndex e = s + r - 1;  // window right edge
        // The cursor indexes the chain bottom-up (positions decreasing);
        // the window minimum sits at the first record <= e. Pops can only
        // strand the cursor past the head, never before the answer.
        std::size_t c = cursor[r_idx];
        if (c >= chain.size()) c = chain.size() - 1;
        while (chain[c] > e) ++c;
        cursor[r_idx] = c;
        upper_[r_idx * plane + s * nq + static_cast<std::size_t>(q)] =
            w_s + x[chain[c]];
        lower_[r_idx * plane + s * nq + static_cast<std::size_t>(q)] =
            (q == qmax()) ? kTimeMinusInf : region.td(e, q + 1);
      }
    }
  }
  if (layout == ArenaLayout::kCompressed) compress_planes();
}

RelaxationTable::RelaxationTable(StateIndex num_states, int num_levels,
                                 std::vector<int> rho, std::vector<TimeNs> upper,
                                 std::vector<TimeNs> lower, ArenaLayout layout)
    : n_(num_states), nq_(num_levels), rho_(std::move(rho)),
      upper_(std::move(upper)), lower_(std::move(lower)) {
  SPEEDQM_REQUIRE(n_ > 0 && nq_ > 0, "RelaxationTable: empty dimensions");
  SPEEDQM_REQUIRE(!rho_.empty(), "RelaxationTable: rho must be non-empty");
  for (std::size_t i = 0; i < rho_.size(); ++i) {
    SPEEDQM_REQUIRE(rho_[i] >= 1, "RelaxationTable: steps must be >= 1");
    SPEEDQM_REQUIRE(i == 0 || rho_[i] > rho_[i - 1],
                    "RelaxationTable: rho must be strictly increasing");
  }
  const std::size_t expected = rho_.size() * n_ * static_cast<std::size_t>(nq_);
  SPEEDQM_REQUIRE(upper_.size() == expected, "RelaxationTable: upper size mismatch");
  SPEEDQM_REQUIRE(lower_.size() == expected, "RelaxationTable: lower size mismatch");
  if (layout == ArenaLayout::kCompressed) compress_planes();
}

void RelaxationTable::compress_planes() {
  // Each border plane is a [r_idx * n_] x [nq_] table in the compressor's
  // terms; the flat planes are dropped once encoded (the decode is exact).
  const StateIndex rows = rho_.size() * n_;
  cupper_.emplace(rows, nq_, upper_);
  clower_.emplace(rows, nq_, lower_);
  upper_.clear();
  upper_.shrink_to_fit();
  lower_.clear();
  lower_.shrink_to_fit();
  layout_ = ArenaLayout::kCompressed;
}

std::size_t RelaxationTable::memory_bytes() const {
  if (layout_ == ArenaLayout::kCompressed) {
    return cupper_->memory_bytes() + clower_->memory_bytes();
  }
  return num_integers() * sizeof(TimeNs);
}

const std::vector<TimeNs>& RelaxationTable::raw_upper() const {
  SPEEDQM_REQUIRE(layout_ == ArenaLayout::kFlat,
                  "RelaxationTable: raw borders require the flat layout");
  return upper_;
}

const std::vector<TimeNs>& RelaxationTable::raw_lower() const {
  SPEEDQM_REQUIRE(layout_ == ArenaLayout::kFlat,
                  "RelaxationTable: raw borders require the flat layout");
  return lower_;
}

std::size_t RelaxationTable::idx(std::size_t r_idx, StateIndex s, Quality q) const {
  SPEEDQM_REQUIRE(s < n_, "RelaxationTable: state out of range");
  SPEEDQM_REQUIRE(q >= 0 && q < nq_, "RelaxationTable: quality out of range");
  return r_idx * (n_ * static_cast<std::size_t>(nq_)) +
         s * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q);
}

TimeNs RelaxationTable::upper(StateIndex s, Quality q, int r) const {
  const auto it = std::find(rho_.begin(), rho_.end(), r);
  SPEEDQM_REQUIRE(it != rho_.end(), "RelaxationTable: r not in rho");
  const auto r_idx = static_cast<std::size_t>(it - rho_.begin());
  if (layout_ == ArenaLayout::kCompressed) {
    SPEEDQM_REQUIRE(s < n_, "RelaxationTable: state out of range");
    return cupper_->td(r_idx * n_ + s, q);  // td() range-checks q
  }
  return upper_[idx(r_idx, s, q)];
}

TimeNs RelaxationTable::lower(StateIndex s, Quality q, int r) const {
  const auto it = std::find(rho_.begin(), rho_.end(), r);
  SPEEDQM_REQUIRE(it != rho_.end(), "RelaxationTable: r not in rho");
  const auto r_idx = static_cast<std::size_t>(it - rho_.begin());
  if (layout_ == ArenaLayout::kCompressed) {
    SPEEDQM_REQUIRE(s < n_, "RelaxationTable: state out of range");
    return clower_->td(r_idx * n_ + s, q);
  }
  return lower_[idx(r_idx, s, q)];
}

bool RelaxationTable::contains(StateIndex s, TimeNs t, Quality q, int r) const {
  if (static_cast<StateIndex>(r) > n_ - s) return false;
  const TimeNs up = upper(s, q, r);
  const TimeNs lo = lower(s, q, r);
  return lo < t && t <= up;
}

int RelaxationTable::max_relaxation(StateIndex s, TimeNs t, Quality q,
                                    std::uint64_t* ops) const {
  const std::size_t plane = n_ * static_cast<std::size_t>(nq_);
  const std::size_t cell = s * static_cast<std::size_t>(nq_) +
                           static_cast<std::size_t>(q);
  std::uint64_t local_ops = 0;
  int chosen = 1;
  if (layout_ == ArenaLayout::kCompressed) {
    // Same scan, same probe count: skipped widths (r > n - s) never touch
    // the planes in either layout, so ops stays bit-identical to flat.
    for (std::size_t r_idx = rho_.size(); r_idx-- > 0;) {
      ++local_ops;
      const auto r = static_cast<StateIndex>(rho_[r_idx]);
      if (r > n_ - s) continue;
      const StateIndex row = r_idx * n_ + s;
      const TimeNs up = cupper_->row(row).value(q);
      const TimeNs lo = clower_->row(row).value(q);
      if (lo < t && t <= up) {
        chosen = rho_[r_idx];
        break;
      }
    }
    if (ops) *ops += local_ops;
    return chosen;
  }
  for (std::size_t r_idx = rho_.size(); r_idx-- > 0;) {
    ++local_ops;
    const auto r = static_cast<StateIndex>(rho_[r_idx]);
    if (r > n_ - s) continue;
    const TimeNs up = upper_[r_idx * plane + cell];
    const TimeNs lo = lower_[r_idx * plane + cell];
    if (lo < t && t <= up) {
      chosen = rho_[r_idx];
      break;
    }
  }
  if (ops) *ops += local_ops;
  return chosen;
}

}  // namespace speedqm
