#include "core/relaxation_region.hpp"

#include <algorithm>
#include <deque>

#include "support/contract.hpp"

namespace speedqm {

RelaxationTable::RelaxationTable(const PolicyEngine& engine,
                                 const QualityRegionTable& region,
                                 std::vector<int> rho)
    : n_(engine.num_states()), nq_(engine.num_levels()), rho_(std::move(rho)) {
  SPEEDQM_REQUIRE(!rho_.empty(), "RelaxationTable: rho must be non-empty");
  for (std::size_t i = 0; i < rho_.size(); ++i) {
    SPEEDQM_REQUIRE(rho_[i] >= 1, "RelaxationTable: steps must be >= 1");
    SPEEDQM_REQUIRE(i == 0 || rho_[i] > rho_[i - 1],
                    "RelaxationTable: rho must be strictly increasing");
  }
  SPEEDQM_REQUIRE(region.num_states() == n_ && region.num_levels() == nq_,
                  "RelaxationTable: region table does not match engine");

  const auto nq = static_cast<std::size_t>(nq_);
  const std::size_t plane = n_ * nq;
  upper_.assign(rho_.size() * plane, kTimeMinusInf);
  lower_.assign(rho_.size() * plane, kTimeMinusInf);

  const TimingModel& tm = engine.timing();
  // For each quality, X(j) = tD(j, q) - W_q(j) with W_q the Cwc prefix sum;
  // then tD,r(s, q) = W_q(s) + min_{j in [s, s+r-1]} X(j). A monotone deque
  // gives all windows of one width in O(n).
  std::vector<TimeNs> x(n_);
  for (Quality q = 0; q < nq_; ++q) {
    for (StateIndex j = 0; j < n_; ++j) {
      x[j] = region.td(j, q) - tm.cwc_prefix(j, q);
    }
    for (std::size_t r_idx = 0; r_idx < rho_.size(); ++r_idx) {
      const auto r = static_cast<StateIndex>(rho_[r_idx]);
      if (r > n_) continue;  // no state has r actions remaining
      std::deque<StateIndex> win;  // indices with increasing X values
      // Seed the deque with the first window's tail [0, r-1), then slide.
      for (StateIndex j = 0; j + 1 < r; ++j) {
        while (!win.empty() && x[win.back()] >= x[j]) win.pop_back();
        win.push_back(j);
      }
      for (StateIndex s = 0; s + r <= n_; ++s) {
        const StateIndex j = s + r - 1;  // window's new right edge
        while (!win.empty() && x[win.back()] >= x[j]) win.pop_back();
        win.push_back(j);
        while (win.front() < s) win.pop_front();
        upper_[r_idx * plane + s * nq + static_cast<std::size_t>(q)] =
            tm.cwc_prefix(s, q) + x[win.front()];
        lower_[r_idx * plane + s * nq + static_cast<std::size_t>(q)] =
            (q == qmax()) ? kTimeMinusInf : region.td(s + r - 1, q + 1);
      }
    }
  }
}

RelaxationTable::RelaxationTable(StateIndex num_states, int num_levels,
                                 std::vector<int> rho, std::vector<TimeNs> upper,
                                 std::vector<TimeNs> lower)
    : n_(num_states), nq_(num_levels), rho_(std::move(rho)),
      upper_(std::move(upper)), lower_(std::move(lower)) {
  SPEEDQM_REQUIRE(n_ > 0 && nq_ > 0, "RelaxationTable: empty dimensions");
  SPEEDQM_REQUIRE(!rho_.empty(), "RelaxationTable: rho must be non-empty");
  for (std::size_t i = 0; i < rho_.size(); ++i) {
    SPEEDQM_REQUIRE(rho_[i] >= 1, "RelaxationTable: steps must be >= 1");
    SPEEDQM_REQUIRE(i == 0 || rho_[i] > rho_[i - 1],
                    "RelaxationTable: rho must be strictly increasing");
  }
  const std::size_t expected = rho_.size() * n_ * static_cast<std::size_t>(nq_);
  SPEEDQM_REQUIRE(upper_.size() == expected, "RelaxationTable: upper size mismatch");
  SPEEDQM_REQUIRE(lower_.size() == expected, "RelaxationTable: lower size mismatch");
}

std::size_t RelaxationTable::idx(std::size_t r_idx, StateIndex s, Quality q) const {
  SPEEDQM_REQUIRE(s < n_, "RelaxationTable: state out of range");
  SPEEDQM_REQUIRE(q >= 0 && q < nq_, "RelaxationTable: quality out of range");
  return r_idx * (n_ * static_cast<std::size_t>(nq_)) +
         s * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q);
}

TimeNs RelaxationTable::upper(StateIndex s, Quality q, int r) const {
  const auto it = std::find(rho_.begin(), rho_.end(), r);
  SPEEDQM_REQUIRE(it != rho_.end(), "RelaxationTable: r not in rho");
  return upper_[idx(static_cast<std::size_t>(it - rho_.begin()), s, q)];
}

TimeNs RelaxationTable::lower(StateIndex s, Quality q, int r) const {
  const auto it = std::find(rho_.begin(), rho_.end(), r);
  SPEEDQM_REQUIRE(it != rho_.end(), "RelaxationTable: r not in rho");
  return lower_[idx(static_cast<std::size_t>(it - rho_.begin()), s, q)];
}

bool RelaxationTable::contains(StateIndex s, TimeNs t, Quality q, int r) const {
  if (static_cast<StateIndex>(r) > n_ - s) return false;
  const TimeNs up = upper(s, q, r);
  const TimeNs lo = lower(s, q, r);
  return lo < t && t <= up;
}

int RelaxationTable::max_relaxation(StateIndex s, TimeNs t, Quality q,
                                    std::uint64_t* ops) const {
  const std::size_t plane = n_ * static_cast<std::size_t>(nq_);
  const std::size_t cell = s * static_cast<std::size_t>(nq_) +
                           static_cast<std::size_t>(q);
  std::uint64_t local_ops = 0;
  int chosen = 1;
  for (std::size_t r_idx = rho_.size(); r_idx-- > 0;) {
    ++local_ops;
    const auto r = static_cast<StateIndex>(rho_[r_idx]);
    if (r > n_ - s) continue;
    const TimeNs up = upper_[r_idx * plane + cell];
    const TimeNs lo = lower_[r_idx * plane + cell];
    if (lo < t && t <= up) {
      chosen = rho_[r_idx];
      break;
    }
  }
  if (ops) *ops += local_ops;
  return chosen;
}

}  // namespace speedqm
