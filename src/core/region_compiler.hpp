// Offline compilation of symbolic Quality Managers.
//
// This plays the role of the paper's Matlab/Simulink prototype tool and the
// compiler of figure 1: given the scheduled application, timing functions
// and deadlines, it pre-computes the quality-region and control-relaxation
// tables and can persist them (the artifacts that would be linked into the
// controlled software on the target).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/quality_region.hpp"
#include "core/relaxation_region.hpp"
#include "core/td_compressed.hpp"

namespace speedqm {

/// Summary statistics about one compiled controller (the paper's table-size
/// and memory-overhead figures, section 4.1).
struct CompilationStats {
  std::size_t region_integers = 0;      ///< |A| * |Q|
  std::size_t region_bytes = 0;
  std::size_t relaxation_integers = 0;  ///< 2 * |A| * |Q| * |rho|
  std::size_t relaxation_bytes = 0;
  double compile_seconds = 0;
};

/// Stateless compiler facade.
class RegionCompiler {
 public:
  /// Compiles the quality-region table for the engine's policy.
  static QualityRegionTable compile_regions(const PolicyEngine& engine);

  /// Compiles the relaxation table for the given step set; kCompressed
  /// stores the border planes in the delta-coded arena (bit-exact lookups).
  static RelaxationTable compile_relaxation(
      const PolicyEngine& engine, const QualityRegionTable& regions,
      std::vector<int> rho, ArenaLayout layout = ArenaLayout::kFlat);

  /// Compiles both tables and reports sizes + wall time.
  static CompilationStats measure(const PolicyEngine& engine,
                                  const std::vector<int>& rho);

  // --- Serialization (little-endian binary with magic + version). ---
  //
  // Region tables have two on-disk versions sharing the magic/dims header:
  // version 1 is the raw 64-bit flat table, version 2 the delta-coded
  // arena of core/td_compressed.hpp (~2.2-2.4x smaller). The loaders
  // accept BOTH versions — load_regions decompresses a v2 stream into the
  // flat table, load_regions_compressed compresses a v1 stream — so
  // artifacts cross-load regardless of which layout wrote them.

  static void save_regions(const QualityRegionTable& table, std::ostream& out);
  static QualityRegionTable load_regions(std::istream& in);
  static void save_regions_file(const QualityRegionTable& table,
                                const std::string& path);
  static QualityRegionTable load_regions_file(const std::string& path);

  static void save_regions_compressed(const CompressedTdTable& table,
                                      std::ostream& out);
  static CompressedTdTable load_regions_compressed(std::istream& in);
  static void save_regions_compressed_file(const CompressedTdTable& table,
                                           const std::string& path);
  static CompressedTdTable load_regions_compressed_file(const std::string& path);

  static void save_relaxation(const RelaxationTable& table, std::ostream& out);
  static RelaxationTable load_relaxation(std::istream& in);
  static void save_relaxation_file(const RelaxationTable& table,
                                   const std::string& path);
  static RelaxationTable load_relaxation_file(const std::string& path);
};

}  // namespace speedqm
