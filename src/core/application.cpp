#include "core/application.hpp"

#include "support/contract.hpp"

namespace speedqm {

ScheduledApp::Builder& ScheduledApp::Builder::action(std::string name, TimeNs d) {
  names_.push_back(std::move(name));
  deadlines_.push_back(d);
  return *this;
}

ScheduledApp::Builder& ScheduledApp::Builder::deadline(TimeNs d) {
  SPEEDQM_REQUIRE(!names_.empty(), "Builder::deadline: no action added yet");
  deadlines_.back() = d;
  return *this;
}

ScheduledApp ScheduledApp::Builder::build() && {
  return ScheduledApp(std::move(names_), std::move(deadlines_));
}

ScheduledApp::ScheduledApp(std::vector<std::string> names,
                           std::vector<TimeNs> deadlines)
    : names_(std::move(names)), deadlines_(std::move(deadlines)) {
  SPEEDQM_REQUIRE(!names_.empty(), "ScheduledApp: needs at least one action");
  SPEEDQM_REQUIRE(names_.size() == deadlines_.size(),
                  "ScheduledApp: names/deadlines size mismatch");
  bool any_finite = false;
  for (ActionIndex i = 0; i < deadlines_.size(); ++i) {
    const TimeNs d = deadlines_[i];
    SPEEDQM_REQUIRE(d > 0, "ScheduledApp: deadlines must be positive");
    if (d < kTimePlusInf) {
      any_finite = true;
      if (d >= final_deadline_) {
        final_deadline_ = d;
        last_deadline_index_ = i;
      }
    }
  }
  SPEEDQM_REQUIRE(any_finite, "ScheduledApp: at least one finite deadline required");
}

ScheduledApp make_uniform_app(ActionIndex n, TimeNs budget, const std::string& prefix) {
  SPEEDQM_REQUIRE(n > 0, "make_uniform_app: n must be positive");
  SPEEDQM_REQUIRE(budget > 0, "make_uniform_app: budget must be positive");
  std::vector<std::string> names;
  std::vector<TimeNs> deadlines(n, kTimePlusInf);
  names.reserve(n);
  for (ActionIndex i = 0; i < n; ++i) names.push_back(prefix + std::to_string(i));
  deadlines.back() = budget;
  return ScheduledApp(std::move(names), std::move(deadlines));
}

}  // namespace speedqm
