// Batched multi-task decision engine: Γ(s_τ, t) for all T tasks in one pass.
//
// The composed-system path (core/multi_task.hpp) interleaves T tasks into
// one schedule but still answers one decision per composite action,
// re-probing tables task by task through a virtual QualityManager call.
// When many applications share one platform clock, that per-task dispatch
// is the dominant cost: each call re-loads the manager's table metadata,
// re-derives the row base, and returns through two call boundaries — work
// that does not shrink as T grows.
//
// BatchDecisionEngine restructures the data instead of the control flow:
//   * task-major SoA cursors — one contiguous array of per-task row base
//     pointers into a shared tD arena (all tasks' flat [state][quality]
//     tables back to back, the TabledNumericManager / RegionCompiler
//     layout) plus one contiguous warm-hint array;
//   * decide_all(states, t, out) resolves every task's quality probe in a
//     single row sweep — the warm steady state is two loads and two
//     compares per task, fully inlined, no virtual dispatch;
//   * decisions are bit-identical (including Decision.ops) to sequential
//     per-task decisions because the sweep replicates the shared prefix
//     search of core/decision_search.hpp probe for probe, and anything
//     beyond the warm neighbourhood falls back to decide_max_quality
//     itself.
//
// Mode::kIncremental swaps the arena for one IncrementalTdState lane set
// per task replayed against the common clock (no precomputed tables; for
// sequences assembled at run time), bit-identical to per-task
// NumericManager::Strategy::kIncremental.
//
// Two orthogonal hot-path options (tabled mode):
//   * ArenaLayout::kCompressed stores the arena in the delta-coded layout
//     of core/td_compressed.hpp (~2.2-2.4x less memory); probes decode
//     exactly, so decisions and ops are unchanged.
//   * Kernel::kAuto vectorizes the whole sweep across task lanes
//     (AVX2/AVX512/NEON when built with SPEEDQM_SIMD; see batch_engine.cpp
//     and batch_sweep.hpp): the warm-neighbourhood resolve as vector
//     compares + selects over lane groups, beyond-neighbourhood outcomes
//     through a lock-step masked binary search, and compressed-arena
//     probes block-decoded in registers. The scalar path is the SAME
//     resolve template instantiated with one-lane operations, and the
//     vector search replays decide_max_quality's probe schedule exactly,
//     which is what keeps decisions — including Decision.ops —
//     bit-identical across scalar/SIMD and flat/compressed combinations.
//     kAuto additionally adapts PER SWEEP: one sweep in 16 records
//     occupancy/outcome counters (SweepStats), and groups only stay on
//     the vector kernel while enough warm live lanes fill them —
//     otherwise the branchy scalar kernel wins and is picked.
//
// On top of the engine, MultiTaskEpochManager adapts batched decisions to
// the cyclic executor over a ComposedSystem: at a composite action whose
// task has no cached decision left, ALL unfinished tasks are re-decided at
// the current observed time (one composite decision point per interleave
// round), and each task's cached decision is consumed as its actions come
// up. BatchMultiTaskManager resolves the epoch through decide_all;
// SequentialMultiTaskManager resolves it through per-task virtual manager
// calls — the baseline the bench gates against, and the reference the
// differential tests pin the batched path to.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "core/multi_task.hpp"
#include "core/policy.hpp"
#include "core/sweep_stats.hpp"
#include "core/td_compressed.hpp"
#include "core/td_incremental.hpp"
#include "core/types.hpp"

namespace speedqm {

class BatchDecisionEngine {
 public:
  enum class Mode {
    kTabled,       ///< shared flat tD arena, O(1) probes (default)
    kIncremental,  ///< per-task IncrementalTdState lanes, no tables
  };

  /// Which decide_all sweep kernel to run (tabled mode; decisions are
  /// bit-identical either way — see file comment).
  enum class Kernel {
    kAuto,    ///< occupancy-adaptive: per-sweep pick between scalar and the
              ///< best vector kernel the build + CPU offer (see decide_all)
    kScalar,  ///< force the one-lane instantiation (the differential baseline)
    kVector,  ///< force the vector kernel (scalar when none is usable);
              ///< what benches pin so gates measure the kernel, not the
              ///< adaptive heuristic
  };

  /// Binds to one PolicyEngine per task. All tasks must share the quality
  /// level count (one quality axis, as in compose_tasks). Tabled mode
  /// compiles every task's tD table into one arena up front, flat or
  /// delta-coded per `layout` (layout is ignored by Mode::kIncremental,
  /// which stores no tables).
  explicit BatchDecisionEngine(std::vector<const PolicyEngine*> engines,
                               Mode mode = Mode::kTabled,
                               ArenaLayout layout = ArenaLayout::kFlat,
                               Kernel kernel = Kernel::kAuto);


  // table_ holds raw pointers into this object's own arena_, so a copy
  // would silently keep aliasing the source's buffer (use-after-free once
  // the source dies). Declaring the copy ops deleted also suppresses the
  // implicit moves, which would leave the moved-from cursors dangling.
  BatchDecisionEngine(const BatchDecisionEngine&) = delete;
  BatchDecisionEngine& operator=(const BatchDecisionEngine&) = delete;

  std::size_t num_tasks() const { return engines_.size(); }
  int num_levels() const { return nq_; }
  Mode mode() const { return mode_; }
  ArenaLayout layout() const { return layout_; }
  Kernel kernel() const { return kernel_choice_; }
  /// True when decide_all CAN run a vector kernel in this instance: the
  /// build options and the running CPU offer one and the kernel choice
  /// does not force scalar. Under Kernel::kAuto individual sweeps may
  /// still run scalar when occupancy is low — see vector_engaged().
  bool simd_active() const { return vec_kernel_ != 0; }
  /// True when the NEXT sweep will run the vector kernel (under kAuto
  /// this follows the last sampled occupancy; fixed otherwise).
  bool vector_engaged() const { return active_kernel_ != 0; }
  /// Occupancy/outcome counters of the last sampled sweep (kAuto only;
  /// zeros before the first sample).
  const SweepStats& sweep_stats() const { return stats_; }
  StateIndex num_states(std::size_t task) const { return n_[task]; }

  /// One composite decision point: for every task τ with states[τ] <
  /// num_states(τ), writes Γ_τ(states[τ], t) to out[τ] and advances τ's
  /// warm hint; finished tasks are skipped (out untouched, no ops).
  /// Returns the summed Decision.ops of the pass.
  std::uint64_t decide_all(const StateIndex* states, TimeNs t, Decision* out);

  /// The sequential reference path: the same decision (and ops) decide_all
  /// would produce for this task, through the same warm-hint cursor.
  Decision decide_one(std::size_t task, StateIndex s, TimeNs t);

  /// Direct read of the compiled border tD_τ(s, q) (tabled mode only).
  TimeNs td(std::size_t task, StateIndex s, Quality q) const;

  /// Re-arms for a new cycle: warm hints go cold; incremental lanes rewind
  /// to their compiled state-0 chains (forests are kept).
  void reset();

  /// Arena bytes (tabled) or summed lane bytes (incremental).
  std::size_t memory_bytes() const;
  /// Precomputed integers: sum of n_τ * |Q| in tabled mode, 0 otherwise.
  std::size_t num_table_integers() const;

 private:
  Decision decide_row(const TimeNs* row, Quality hint, TimeNs t) const;
  std::uint64_t decide_all_incremental(const StateIndex* states, TimeNs t,
                                       Decision* out);

  std::vector<const PolicyEngine*> engines_;
  Mode mode_;
  ArenaLayout layout_ = ArenaLayout::kFlat;
  Kernel kernel_choice_ = Kernel::kAuto;
  /// Best usable vector kernel: 0 none, 1 AVX2, 2 AVX512, 3 NEON —
  /// resolved at construction from the build options and the running CPU
  /// (0 when kernel_choice_ forces scalar or the mode stores no tables).
  int vec_kernel_ = 0;
  /// Kernel the next sweep runs: vec_kernel_ or 0. Fixed for
  /// kScalar/kVector; re-picked from sampled occupancy under kAuto.
  int active_kernel_ = 0;
  std::uint64_t sweep_seq_ = 0;  ///< sweeps since construction (never reset)
  SweepStats stats_;             ///< last sampled sweep's counters
  int nq_ = 0;

  // Task-major SoA cursors (the decide_all hot state).
  std::vector<const TimeNs*> table_;  ///< per task: arena base of its tD table
  std::vector<StateIndex> n_;         ///< per task: number of states
  std::vector<Quality> hint_;         ///< per task: warm hint (-1 = cold)

  std::vector<TimeNs> arena_;         ///< tabled flat: all tables back to back
  std::vector<CompressedTdTable> ctable_;  ///< tabled compressed: per task
  std::vector<std::unique_ptr<IncrementalTdState>> inc_;  ///< incremental mode
};

/// Epoch protocol shared by the batched and sequential multi-task managers
/// (see file comment). Plugs into the unmodified cyclic executor as a
/// QualityManager over the composed interleaved schedule; the whole
/// epoch's op count is charged to the refreshing call, cached hits are
/// free.
class MultiTaskEpochManager : public QualityManager {
 public:
  Decision decide(StateIndex s, TimeNs t) final;
  void reset() final;

  /// Composite decision points taken since construction/reset.
  std::size_t epochs() const { return epochs_; }

 protected:
  explicit MultiTaskEpochManager(const ComposedSystem& system);

  /// Decides all unfinished tasks (states[τ] < task size) at observed time
  /// t into out[]; returns total ops. Finished tasks must be skipped.
  virtual std::uint64_t refresh(const StateIndex* states, TimeNs t,
                                Decision* out) = 0;
  /// Re-arms the decision engines for a new cycle.
  virtual void reset_engines() = 0;

  const ComposedSystem& system() const { return *system_; }

 private:
  const ComposedSystem* system_;
  std::vector<StateIndex> next_local_;  ///< per task: next local action
  std::vector<Decision> cached_;        ///< per task: last epoch's decision
  std::vector<std::uint8_t> fresh_;     ///< per task: cached and unconsumed
  std::size_t epochs_ = 0;
};

/// Batched epoch manager: one BatchDecisionEngine sweep per epoch.
class BatchMultiTaskManager final : public MultiTaskEpochManager {
 public:
  /// `engines[τ]` decides task τ; it must span exactly that task's local
  /// actions. Engine lifetimes must cover the manager's.
  BatchMultiTaskManager(const ComposedSystem& system,
                        std::vector<const PolicyEngine*> engines,
                        BatchDecisionEngine::Mode mode =
                            BatchDecisionEngine::Mode::kTabled,
                        ArenaLayout layout = ArenaLayout::kFlat,
                        BatchDecisionEngine::Kernel kernel =
                            BatchDecisionEngine::Kernel::kAuto);

  std::string name() const override;
  std::size_t memory_bytes() const override { return engine_.memory_bytes(); }
  std::size_t num_table_integers() const override {
    return engine_.num_table_integers();
  }

  BatchDecisionEngine& engine() { return engine_; }

 protected:
  std::uint64_t refresh(const StateIndex* states, TimeNs t,
                        Decision* out) override {
    return engine_.decide_all(states, t, out);
  }
  void reset_engines() override { engine_.reset(); }

 private:
  BatchDecisionEngine engine_;
};

/// Sequential epoch manager: per-task decisions one virtual call at a time
/// — today's architecture, kept as the bench baseline and the reference
/// the batched path must match bit for bit. Mode selects the per-task
/// manager: kTabled wraps each engine in a TabledNumericManager,
/// kIncremental in a NumericManager(Strategy::kIncremental).
class SequentialMultiTaskManager final : public MultiTaskEpochManager {
 public:
  /// `layout` selects the per-task TabledNumericManager arena in kTabled
  /// mode (so the compressed layout has a sequential reference too).
  SequentialMultiTaskManager(const ComposedSystem& system,
                             std::vector<const PolicyEngine*> engines,
                             BatchDecisionEngine::Mode mode =
                                 BatchDecisionEngine::Mode::kTabled,
                             ArenaLayout layout = ArenaLayout::kFlat);

  std::string name() const override;
  std::size_t memory_bytes() const override;

 protected:
  std::uint64_t refresh(const StateIndex* states, TimeNs t,
                        Decision* out) override;
  void reset_engines() override;

 private:
  std::vector<std::unique_ptr<QualityManager>> managers_;
  std::vector<StateIndex> sizes_;
  BatchDecisionEngine::Mode mode_;
};

}  // namespace speedqm
