// Symbolic Quality Manager using control relaxation regions (section 3.3).
//
// After choosing quality q from the quality-region table, it looks up the
// largest r in rho such that the current state lies in Rrq, and returns a
// decision covering r actions: the executor runs the next r-1 actions at q
// without calling the manager at all. The paper measured < 1.1 % overhead
// with an 800 KB table (rho = {1,10,20,30,40,50}).
#pragma once

#include "core/manager.hpp"
#include "core/quality_region.hpp"
#include "core/relaxation_region.hpp"

namespace speedqm {

class RelaxationManager final : public QualityManager {
 public:
  RelaxationManager(const QualityRegionTable& regions,
                    const RelaxationTable& relaxation)
      : regions_(&regions), relaxation_(&relaxation) {}

  Decision decide(StateIndex s, TimeNs t) override {
    Decision d = regions_->decide(s, t);
    if (d.feasible) {
      d.relax_steps = relaxation_->max_relaxation(s, t, d.quality, &d.ops);
    }
    return d;
  }

  std::string name() const override { return "symbolic-relaxation"; }

  std::size_t memory_bytes() const override {
    return regions_->memory_bytes() + relaxation_->memory_bytes();
  }
  std::size_t num_table_integers() const override {
    return regions_->num_integers() + relaxation_->num_integers();
  }

 private:
  const QualityRegionTable* regions_;
  const RelaxationTable* relaxation_;
};

}  // namespace speedqm
