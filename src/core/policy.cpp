#include "core/policy.hpp"

#include <algorithm>

#include "core/decision_search.hpp"
#include "core/td_incremental.hpp"
#include "support/contract.hpp"

namespace speedqm {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMixed: return "mixed";
    case PolicyKind::kSafe: return "safe";
    case PolicyKind::kAverage: return "average";
  }
  return "?";
}

PolicyEngine::PolicyEngine(const ScheduledApp& app, const TimingModel& timing,
                           PolicyKind kind)
    : app_(&app), timing_(&timing), kind_(kind) {
  SPEEDQM_REQUIRE(app.size() == timing.num_actions(),
                  "PolicyEngine: application and timing model sizes differ");
}

// ---------------------------------------------------------------------------
// Online evaluation (the numeric Quality Manager's work).
// ---------------------------------------------------------------------------

TimeNs PolicyEngine::td_online(StateIndex s, Quality q, std::uint64_t* ops) const {
  SPEEDQM_REQUIRE(s < num_states(), "td_online: state out of range");
  SPEEDQM_REQUIRE(timing_->valid_quality(q), "td_online: quality out of range");
  switch (kind_) {
    case PolicyKind::kMixed: return td_online_mixed(s, q, ops);
    case PolicyKind::kSafe: return td_online_safe(s, q, ops);
    case PolicyKind::kAverage: return td_online_average(s, q, ops);
  }
  SPEEDQM_UNREACHABLE("unreachable policy kind");
}

TimeNs PolicyEngine::td_online_mixed(StateIndex s, Quality q,
                                     std::uint64_t* ops) const {
  // Forward scan maintaining, incrementally in k:
  //   cav_sum = Cav(s..k, q)
  //   dmax    = δmax(s..k, q)
  // via the recurrences
  //   δ(j..k, q)  = δ(j..k-1, q) + Cwc(k, qmin) - Cav(k, q)     (j < k)
  //   δ(k..k, q)  = Cwc(k, q) - Cav(k, q)
  //   δmax(s..k)  = max(δmax(s..k-1) + Cwc(k,qmin) - Cav(k,q), δ(k..k)).
  // Each iteration is a constant number of adds/compares; we count one
  // abstract operation per scanned action plus one per deadline check.
  //
  // The sweep walks four contiguous quality-major streams (Cav(., q),
  // Cwc(., q), Cwc(., qmin), D(.)) rather than gathering strided rows.
  const ActionIndex n = app_->size();
  const TimeNs* cav_q = timing_->cav_at_quality(q);
  const TimeNs* cwc_q = timing_->cwc_at_quality(q);
  const TimeNs* cwc_min = timing_->cwc_qmin_data();
  const TimeNs* dl = app_->deadline_data();
  TimeNs cav_sum = 0;
  TimeNs dmax = 0;
  TimeNs best = kTimePlusInf;
  std::uint64_t local_ops = 0;
  for (ActionIndex k = s; k < n; ++k) {
    const TimeNs cav_k = cav_q[k];
    const TimeNs delta_kk = cwc_q[k] - cav_k;
    if (k == s) {
      dmax = delta_kk;
    } else {
      dmax = std::max(dmax + cwc_min[k] - cav_k, delta_kk);
    }
    cav_sum += cav_k;
    ++local_ops;
    const TimeNs d = dl[k];
    if (d < kTimePlusInf) {
      best = std::min(best, d - (cav_sum + dmax));
      ++local_ops;
    }
  }
  if (ops) *ops += local_ops;
  return best;
}

TimeNs PolicyEngine::td_online_safe(StateIndex s, Quality q,
                                    std::uint64_t* ops) const {
  const ActionIndex n = app_->size();
  const TimeNs* cwc_q = timing_->cwc_at_quality(q);
  const TimeNs* cwc_min = timing_->cwc_qmin_data();
  const TimeNs* dl = app_->deadline_data();
  TimeNs csf_sum = 0;
  TimeNs best = kTimePlusInf;
  std::uint64_t local_ops = 0;
  for (ActionIndex k = s; k < n; ++k) {
    csf_sum += (k == s) ? cwc_q[k] : cwc_min[k];
    ++local_ops;
    const TimeNs d = dl[k];
    if (d < kTimePlusInf) {
      best = std::min(best, d - csf_sum);
      ++local_ops;
    }
  }
  if (ops) *ops += local_ops;
  return best;
}

TimeNs PolicyEngine::td_online_average(StateIndex s, Quality q,
                                       std::uint64_t* ops) const {
  const ActionIndex n = app_->size();
  const TimeNs* cav_q = timing_->cav_at_quality(q);
  const TimeNs* dl = app_->deadline_data();
  TimeNs cav_sum = 0;
  TimeNs best = kTimePlusInf;
  std::uint64_t local_ops = 0;
  for (ActionIndex k = s; k < n; ++k) {
    cav_sum += cav_q[k];
    ++local_ops;
    const TimeNs d = dl[k];
    if (d < kTimePlusInf) {
      best = std::min(best, d - cav_sum);
      ++local_ops;
    }
  }
  if (ops) *ops += local_ops;
  return best;
}

Decision PolicyEngine::decide_online(StateIndex s, TimeNs t,
                                     Quality warm_hint) const {
  SPEEDQM_REQUIRE(s < num_states(), "decide_online: state out of range");
  return decide_max_quality(qmax(), warm_hint,
                            [&](Quality q, std::uint64_t* ops) {
                              return td_online(s, q, ops) >= t;
                            });
}

Decision PolicyEngine::decide_incremental(IncrementalTdState& state,
                                          StateIndex s, TimeNs t,
                                          Quality warm_hint) const {
  SPEEDQM_REQUIRE(&state.engine() == this,
                  "decide_incremental: state built from a different engine");
  SPEEDQM_REQUIRE(s < num_states(), "decide_incremental: state out of range");
  return decide_max_quality(qmax(), warm_hint,
                            [&](Quality q, std::uint64_t* ops) {
                              return state.td(s, q, ops) >= t;
                            });
}

Decision PolicyEngine::decide_scan(StateIndex s, TimeNs t) const {
  Decision d;
  d.relax_steps = 1;
  for (Quality q = qmax(); q >= kQmin; --q) {
    ++d.ops;  // quality probe
    if (td_online(s, q, &d.ops) >= t) {
      d.quality = q;
      d.feasible = true;
      return d;
    }
  }
  d.quality = kQmin;
  d.feasible = false;
  return d;
}

// ---------------------------------------------------------------------------
// Symbolic table construction (offline; used by the RegionCompiler).
// ---------------------------------------------------------------------------

std::vector<TimeNs> PolicyEngine::td_table() const {
  const auto nq = static_cast<std::size_t>(timing_->num_levels());
  std::vector<TimeNs> table(num_states() * nq, kTimePlusInf);
  std::vector<TimeNs> column(num_states());
  for (Quality q = 0; q < timing_->num_levels(); ++q) {
    switch (kind_) {
      case PolicyKind::kMixed: td_table_mixed(q, column); break;
      case PolicyKind::kSafe: td_table_safe(q, column); break;
      case PolicyKind::kAverage: td_table_average(q, column); break;
    }
    for (StateIndex s = 0; s < num_states(); ++s) {
      table[s * nq + static_cast<std::size_t>(q)] = column[s];
    }
  }
  return table;
}

void PolicyEngine::td_table_mixed(Quality q, std::vector<TimeNs>& out) const {
  // tD(s, q) = Av_q(s) + min_{k >= s, D(k) finite} [ G(k) - max_{s<=j<=k} M(j) ]
  // with M(j) = Av_q(j) + Cwc(j, q) + SufMin(j+1)
  //      G(k) = D(k) + SufMin(k+1).
  //
  // Sweep s from n-1 downward keeping a monotone stack of segments over k.
  // Each segment covers a maximal run of k positions sharing the same value
  // of max_{s<=j<=k} M(j) (= the segment's `m`); it records the minimum of
  // G over its deadline-carrying positions and the best (min of G - m)
  // achievable in this segment and everything to its right. Amortized O(n).
  const ActionIndex n = app_->size();
  struct Segment {
    TimeNs m;            // max of M over the js forming this segment
    TimeNs min_g;        // min G(k) over deadline ks covered (kTimePlusInf if none)
    TimeNs suffix_best;  // min over this segment and all segments below
  };
  std::vector<Segment> stack;
  stack.reserve(64);
  out.assign(n, kTimePlusInf);

  for (ActionIndex s = n; s-- > 0;) {
    const TimeNs m_s = timing_->cav_prefix(s, q) + timing_->cwc(s, q) +
                       timing_->cwc_qmin_suffix(s + 1);
    const TimeNs d = app_->deadline(s);
    TimeNs min_g = (d < kTimePlusInf) ? d + timing_->cwc_qmin_suffix(s + 1)
                                      : kTimePlusInf;
    while (!stack.empty() && stack.back().m <= m_s) {
      min_g = std::min(min_g, stack.back().min_g);
      stack.pop_back();
    }
    TimeNs best = (min_g >= kTimePlusInf) ? kTimePlusInf : min_g - m_s;
    // Combine with whatever remains to the right (strictly larger m there
    // means those segments keep their own maxima).
    const TimeNs below = stack.empty() ? kTimePlusInf : stack.back().suffix_best;
    const TimeNs suffix_best = std::min(best, below);
    stack.push_back(Segment{m_s, min_g, suffix_best});
    out[s] = (suffix_best >= kTimePlusInf)
                 ? kTimePlusInf
                 : timing_->cav_prefix(s, q) + suffix_best;
  }
}

void PolicyEngine::td_table_safe(Quality q, std::vector<TimeNs>& out) const {
  // tD_sf(s, q) = min_{k>=s finite} G(k) - Cwc(s, q) - SufMin(s+1),
  // with the same G(k) = D(k) + SufMin(k+1). Single suffix-min sweep.
  const ActionIndex n = app_->size();
  out.assign(n, kTimePlusInf);
  TimeNs suffix_min_g = kTimePlusInf;
  for (ActionIndex s = n; s-- > 0;) {
    const TimeNs d = app_->deadline(s);
    if (d < kTimePlusInf) {
      suffix_min_g = std::min(suffix_min_g, d + timing_->cwc_qmin_suffix(s + 1));
    }
    out[s] = (suffix_min_g >= kTimePlusInf)
                 ? kTimePlusInf
                 : suffix_min_g - timing_->cwc(s, q) - timing_->cwc_qmin_suffix(s + 1);
  }
}

void PolicyEngine::td_table_average(Quality q, std::vector<TimeNs>& out) const {
  // tD_av(s, q) = Av_q(s) + min_{k>=s finite} [ D(k) - Av_q(k+1) ].
  const ActionIndex n = app_->size();
  out.assign(n, kTimePlusInf);
  TimeNs suffix_min = kTimePlusInf;
  for (ActionIndex s = n; s-- > 0;) {
    const TimeNs d = app_->deadline(s);
    if (d < kTimePlusInf) {
      suffix_min = std::min(suffix_min, d - timing_->cav_prefix(s + 1, q));
    }
    out[s] = (suffix_min >= kTimePlusInf) ? kTimePlusInf
                                          : timing_->cav_prefix(s, q) + suffix_min;
  }
}

// ---------------------------------------------------------------------------
// Naive reference (test oracle) and segment quantities.
// ---------------------------------------------------------------------------

TimeNs PolicyEngine::csf(ActionIndex j, ActionIndex k, Quality q) const {
  SPEEDQM_REQUIRE(j <= k && k < app_->size(), "csf: bad action range");
  return timing_->cwc(j, q) + (j < k ? timing_->cwc_range(j + 1, k, kQmin) : 0);
}

TimeNs PolicyEngine::delta(ActionIndex j, ActionIndex k, Quality q) const {
  return csf(j, k, q) - timing_->cav_range(j, k, q);
}

TimeNs PolicyEngine::delta_max(ActionIndex s, ActionIndex k, Quality q) const {
  SPEEDQM_REQUIRE(s <= k && k < app_->size(), "delta_max: bad action range");
  TimeNs best = kTimeMinusInf;
  for (ActionIndex j = s; j <= k; ++j) best = std::max(best, delta(j, k, q));
  return best;
}

TimeNs PolicyEngine::cd(ActionIndex s, ActionIndex k, Quality q) const {
  SPEEDQM_REQUIRE(s <= k && k < app_->size(), "cd: bad action range");
  switch (kind_) {
    case PolicyKind::kMixed:
      return timing_->cav_range(s, k, q) + delta_max(s, k, q);
    case PolicyKind::kSafe:
      return csf(s, k, q);
    case PolicyKind::kAverage:
      return timing_->cav_range(s, k, q);
  }
  SPEEDQM_UNREACHABLE("unreachable policy kind");
}

TimeNs PolicyEngine::td_naive(StateIndex s, Quality q) const {
  SPEEDQM_REQUIRE(s < num_states(), "td_naive: state out of range");
  const ActionIndex n = app_->size();
  TimeNs best = kTimePlusInf;
  for (ActionIndex k = s; k < n; ++k) {
    const TimeNs d = app_->deadline(k);
    if (d >= kTimePlusInf) continue;
    best = std::min(best, d - cd(s, k, q));
  }
  return best;
}

}  // namespace speedqm
