// Execution-time estimates: the paper's Cav and Cwc functions.
//
// A TimingModel stores, for every (action, quality) pair, the estimated
// average execution time Cav(a, q) and the worst-case execution time
// Cwc(a, q). Definition 1 requires both to be non-decreasing with quality
// and Cav <= Cwc; construction validates this so every downstream component
// can rely on it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "support/contract.hpp"
#include "support/time.hpp"

namespace speedqm {

/// Dense (n actions) x (|Q| levels) table pair of Cav / Cwc, row-major by
/// action. Immutable after construction.
class TimingModel {
 public:
  /// `cav` and `cwc` are row-major [action][quality], each of size
  /// n * num_levels. Validates: positive sizes, matching dimensions,
  /// 0 <= cav(i,q) <= cwc(i,q), and both non-decreasing in q.
  TimingModel(ActionIndex num_actions, int num_levels,
              std::vector<TimeNs> cav, std::vector<TimeNs> cwc);

  ActionIndex num_actions() const { return n_; }
  int num_levels() const { return nq_; }
  Quality qmin() const { return kQmin; }
  Quality qmax() const { return nq_ - 1; }
  bool valid_quality(Quality q) const { return q >= 0 && q < nq_; }

  TimeNs cav(ActionIndex i, Quality q) const { return cav_[idx(i, q)]; }
  TimeNs cwc(ActionIndex i, Quality q) const { return cwc_[idx(i, q)]; }

  // --- Flat hot-path views (no bounds checks, contiguous per quality). ---
  //
  // Besides the row-major [action][quality] tables above, the model keeps
  // quality-major mirrors [quality][action]: an online tD sweep walks all
  // remaining actions at ONE fixed quality, so the mirror turns its three
  // gathers per step (stride |Q|) into three contiguous streams. Decision
  // code should use these; the checked accessors remain for cold paths.

  /// Contiguous Cav(., q) over actions 0..n-1.
  const TimeNs* cav_at_quality(Quality q) const {
    return cav_by_q_.data() + static_cast<std::size_t>(q) * n_;
  }
  /// Contiguous Cwc(., q) over actions 0..n-1.
  const TimeNs* cwc_at_quality(Quality q) const {
    return cwc_by_q_.data() + static_cast<std::size_t>(q) * n_;
  }
  /// Contiguous Cwc(., qmin) — the tail-at-minimal-quality stream of the
  /// mixed and safe estimators.
  const TimeNs* cwc_qmin_data() const { return cwc_by_q_.data(); }
  /// Contiguous SufMin(0..n) suffix sums.
  const TimeNs* cwc_qmin_suffix_data() const { return cwc_qmin_suffix_.data(); }

  /// Unchecked element reads for validated inner loops.
  TimeNs cav_unchecked(ActionIndex i, Quality q) const {
    return cav_[i * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q)];
  }
  TimeNs cwc_unchecked(ActionIndex i, Quality q) const {
    return cwc_[i * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q)];
  }
  /// Unchecked prefix/suffix reads for validated inner loops (the lane
  /// compilation sweeps of IncrementalTdState and the relaxation compiler).
  TimeNs cav_prefix_unchecked(StateIndex i, Quality q) const {
    return cav_prefix_[i * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q)];
  }
  TimeNs cwc_prefix_unchecked(StateIndex i, Quality q) const {
    return cwc_prefix_[i * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q)];
  }
  TimeNs cwc_qmin_suffix_unchecked(StateIndex i) const {
    return cwc_qmin_suffix_[i];
  }

  /// Sum of Cav over actions [first, last] inclusive at quality q
  /// (the paper's Cav(a_first..a_last, q)). Empty if first > last.
  TimeNs cav_range(ActionIndex first, ActionIndex last, Quality q) const;
  /// Sum of Cwc over actions [first, last] inclusive at quality q.
  TimeNs cwc_range(ActionIndex first, ActionIndex last, Quality q) const;

  /// Prefix sums Av_q(i) = sum of Cav(a_0..a_{i-1}, q), i in 0..n.
  /// Precomputed at construction; O(1) range queries on the hot path.
  TimeNs cav_prefix(StateIndex i, Quality q) const { return cav_prefix_[pidx(i, q)]; }
  /// Prefix sums W_q(i) = sum of Cwc(a_0..a_{i-1}, q), i in 0..n.
  TimeNs cwc_prefix(StateIndex i, Quality q) const { return cwc_prefix_[pidx(i, q)]; }
  /// Suffix sums SufMin(i) = sum of Cwc(a_i..a_{n-1}, qmin), i in 0..n.
  /// This is the paper's worst-case tail at minimal quality used by Csf.
  TimeNs cwc_qmin_suffix(StateIndex i) const {
    SPEEDQM_REQUIRE(i <= n_, "TimingModel: suffix index out of range");
    return cwc_qmin_suffix_[i];
  }

  /// Total Cav of the whole sequence at quality q.
  TimeNs total_cav(Quality q) const { return cav_prefix(n_, q); }
  /// Total Cwc of the whole sequence at quality q.
  TimeNs total_cwc(Quality q) const { return cwc_prefix(n_, q); }

  /// Returns a copy with every Cwc entry scaled by `factor` (>= 1.0),
  /// re-validated. Used by the pessimism ablation (A5) and by profilers
  /// applying safety margins.
  TimingModel with_inflated_cwc(double factor) const;

  /// Returns a copy restricted to actions [first, last] inclusive.
  TimingModel slice(ActionIndex first, ActionIndex last) const;

 private:
  std::size_t idx(ActionIndex i, Quality q) const;
  std::size_t pidx(StateIndex i, Quality q) const;
  void build_prefixes();

  ActionIndex n_;
  int nq_;
  std::vector<TimeNs> cav_;             // n * nq, [action][quality]
  std::vector<TimeNs> cwc_;             // n * nq, [action][quality]
  std::vector<TimeNs> cav_by_q_;        // nq * n, [quality][action] mirror
  std::vector<TimeNs> cwc_by_q_;        // nq * n, [quality][action] mirror
  std::vector<TimeNs> cav_prefix_;      // (n+1) * nq
  std::vector<TimeNs> cwc_prefix_;      // (n+1) * nq
  std::vector<TimeNs> cwc_qmin_suffix_; // n+1
};

/// Builder assembling a TimingModel one action at a time; workload
/// generators provide per-quality vectors of (cav, cwc).
class TimingModelBuilder {
 public:
  explicit TimingModelBuilder(int num_levels);

  /// Appends an action given per-quality averages and worst cases
  /// (each of size num_levels).
  TimingModelBuilder& action(const std::vector<TimeNs>& cav,
                             const std::vector<TimeNs>& cwc);

  /// Appends an action whose Cav scales linearly from `cav_min` at qmin to
  /// `cav_max` at qmax, with Cwc = Cav * wc_factor (rounded).
  TimingModelBuilder& linear_action(TimeNs cav_min, TimeNs cav_max,
                                    double wc_factor);

  ActionIndex size() const { return count_; }
  TimingModel build() &&;

 private:
  int nq_;
  ActionIndex count_ = 0;
  std::vector<TimeNs> cav_;
  std::vector<TimeNs> cwc_;
};

}  // namespace speedqm
