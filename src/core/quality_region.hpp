// Quality regions (section 3.2, Proposition 2).
//
// The quality region Rq is the set of states at which the Quality Manager
// chooses quality q. Because tD(s, q) is non-increasing in q, Rq at state s
// is the half-open interval
//
//   t in ( tD(s, q+1), tD(s, q) ]      for q < qmax
//   t in ( -inf,       tD(s, q) ]      for q = qmax.
//
// Precomputing the |A| * |Q| integers tD(s, q) therefore replaces the
// numeric manager's O(remaining-actions) scan with a table lookup — the
// paper's first symbolic implementation (8,323 integers for the MPEG
// encoder configuration).
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.hpp"
#include "core/types.hpp"

namespace speedqm {

/// Immutable precomputed tD table with region queries.
class QualityRegionTable {
 public:
  /// Builds the table from a policy engine (offline step).
  explicit QualityRegionTable(const PolicyEngine& engine);

  /// Reconstructs a table from raw data (deserialization path).
  QualityRegionTable(StateIndex num_states, int num_levels,
                     std::vector<TimeNs> td_data);

  StateIndex num_states() const { return n_; }
  int num_levels() const { return nq_; }
  Quality qmax() const { return nq_ - 1; }

  /// The stored border tD(s, q).
  TimeNs td(StateIndex s, Quality q) const;

  /// Region membership per Proposition 2: is (s, t) in Rq?
  bool contains(StateIndex s, TimeNs t, Quality q) const;

  /// The symbolic Quality Manager decision: max { q | tD(s, q) >= t },
  /// found by binary search over the quality axis (tD non-increasing in q).
  /// Counts table probes into *ops when non-null. Infeasible states (even
  /// qmin fails) return qmin with feasible = false.
  Decision decide(StateIndex s, TimeNs t, std::uint64_t* ops = nullptr) const;

  /// decide() warm-started from a previous decision's quality (probes the
  /// hint and its neighbours before falling back to the binary search);
  /// warm_hint < 0 degrades to the cold search. Decisions are identical.
  Decision decide_warm(StateIndex s, TimeNs t, Quality warm_hint,
                       std::uint64_t* ops = nullptr) const;

  /// Number of stored integers (the paper's table-size metric: |A| * |Q|).
  std::size_t num_integers() const { return td_.size(); }
  /// Memory footprint of the stored table in bytes.
  std::size_t memory_bytes() const { return td_.size() * sizeof(TimeNs); }

  const std::vector<TimeNs>& raw() const { return td_; }

 private:
  StateIndex n_;
  int nq_;
  std::vector<TimeNs> td_;  // row-major [state][quality]
};

}  // namespace speedqm
