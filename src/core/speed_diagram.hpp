// Speed diagrams (section 3.1): a geometric view of the controlled system.
//
// For a target deadline D(a_k), the diagram plots actual time t on the
// horizontal axis against *virtual time* y_i(q) on the vertical axis, where
//
//   y_i(q) = Cav(a_0..a_{i-1}, q) / Cav(a_0..a_k, q) * D(a_k)
//
// (0-based translation of the paper's formula: state i = i actions done).
// Because of the normalization, y_k+1(q) = D(a_k): finishing exactly on the
// diagonal means the budget was used fully. Two speeds explain the mixed
// policy geometrically:
//
//   ideal speed    v_idl(q) = D(a_k) / Cav(a_0..a_k, q)
//       — the slope of the trajectory if every remaining action runs at
//         constant quality q and actual times equal averages;
//   optimal speed  v_opt(q)
//       — the slope from the current point (t_i, y_i(q)) to the target
//         point (D(a_k) - δmax(a_i..a_k, q), D(a_k)), i.e. the deadline
//         backed off by the safety margin δmax.
//
// Proposition 1: v_idl(q) >= v_opt(q)  <=>  D(a_k) - CD(a_i..a_k, q) >= t_i,
// so the Quality Manager's constraint is exactly "the constant-quality ideal
// speed dominates the required optimal speed".
#pragma once

#include <limits>
#include <vector>

#include "core/policy.hpp"

namespace speedqm {

/// Diagram coordinates for one recorded execution step.
struct DiagramPoint {
  StateIndex state = 0;    ///< i: number of completed actions.
  TimeNs actual = 0;       ///< t_i (ns).
  double virtual_time = 0; ///< y_i(q) for the quality active at this step (ns).
  Quality quality = 0;     ///< quality used to reach this state.
};

/// Speed-diagram computations for one (application, timing, target) triple.
/// The engine must use the mixed policy: δmax and CD come from it.
class SpeedDiagram {
 public:
  /// `target` is the index k of the deadline action the diagram normalizes
  /// against; it must carry a finite deadline.
  SpeedDiagram(const PolicyEngine& engine, ActionIndex target);

  ActionIndex target() const { return target_; }
  TimeNs target_deadline() const { return deadline_; }

  /// Virtual time y_i(q), i in 0..target+1 (ns, floating point — used for
  /// reporting only, never for control decisions).
  double virtual_time(StateIndex i, Quality q) const;

  /// Ideal speed v_idl(q) = D(a_k) / Cav(a_0..a_k, q). Dimensionless
  /// (virtual ns per actual ns).
  double ideal_speed(Quality q) const;

  /// Optimal speed from state i at actual time t with quality q. Returns
  /// +infinity when t already exceeds the safety-margin-adjusted target
  /// (no finite speed reaches the target point).
  double optimal_speed(StateIndex i, TimeNs t, Quality q) const;

  /// Left side of Proposition 1, evaluated *exactly* in integer arithmetic
  /// (v_idl(q) >= v_opt(q) reduces to D - δmax - t >= Cav(a_i..a_k, q)).
  bool ideal_dominates_optimal(StateIndex i, TimeNs t, Quality q) const;

  /// Right side of Proposition 1: D(a_k) - CD(a_i..a_k, q) >= t.
  bool policy_constraint_holds(StateIndex i, TimeNs t, Quality q) const;

  /// Safety margin δmax(a_i..a_k, q) from state i to the target (ns).
  TimeNs safety_margin(StateIndex i, Quality q) const;

  /// Builds the diagram trajectory of an executed run: for each recorded
  /// (state, actual time, quality) step, the corresponding diagram point.
  std::vector<DiagramPoint> trajectory(
      const std::vector<StateIndex>& states, const std::vector<TimeNs>& times,
      const std::vector<Quality>& qualities) const;

 private:
  const PolicyEngine* engine_;
  ActionIndex target_;
  TimeNs deadline_;
};

}  // namespace speedqm
