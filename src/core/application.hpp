// The scheduled application software (A, S) with its deadline function D.
//
// The paper assumes the application is *already scheduled*: a finite
// sequence of atomic actions executed in order, each with an optional
// deadline D(a) measured from the start of the cycle. This class is the
// controller's static view of the application; execution-time information
// lives in TimingModel.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "support/contract.hpp"
#include "support/time.hpp"

namespace speedqm {

/// Immutable description of a scheduled action sequence plus deadlines.
///
/// Deadlines use kTimePlusInf for "no deadline on this action"; at least one
/// action (typically the last) must carry a finite deadline, otherwise the
/// quality-management problem is vacuous (any quality is trivially safe).
class ScheduledApp {
 public:
  /// Builder-style construction so workload generators can assemble
  /// applications incrementally.
  class Builder {
   public:
    /// Appends one action. `deadline` is absolute within the cycle.
    Builder& action(std::string name, TimeNs deadline = kTimePlusInf);
    /// Sets the deadline of the most recently added action.
    Builder& deadline(TimeNs d);
    /// Validates and produces the application. Throws contract_error if no
    /// action was added or no finite deadline exists.
    ScheduledApp build() &&;

   private:
    std::vector<std::string> names_;
    std::vector<TimeNs> deadlines_;
  };

  /// Direct construction from parallel arrays (sizes must match; at least
  /// one finite deadline required).
  ScheduledApp(std::vector<std::string> names, std::vector<TimeNs> deadlines);

  /// Number of actions n.
  ActionIndex size() const { return names_.size(); }
  /// Number of decision states (= n; states 0..n-1 each have a next action).
  StateIndex num_states() const { return names_.size(); }

  const std::string& name(ActionIndex i) const {
    SPEEDQM_REQUIRE(i < names_.size(), "ScheduledApp: action out of range");
    return names_[i];
  }
  TimeNs deadline(ActionIndex i) const {
    SPEEDQM_REQUIRE(i < deadlines_.size(), "ScheduledApp: action out of range");
    return deadlines_[i];
  }
  const std::vector<TimeNs>& deadlines() const { return deadlines_; }
  /// Contiguous deadline array for validated inner loops (hot path).
  const TimeNs* deadline_data() const { return deadlines_.data(); }

  /// True if action i carries a finite deadline.
  bool has_deadline(ActionIndex i) const { return deadline(i) < kTimePlusInf; }

  /// The latest finite deadline in the sequence — the cycle's time budget.
  TimeNs final_deadline() const { return final_deadline_; }

  /// Index of the last action with a finite deadline.
  ActionIndex last_deadline_index() const { return last_deadline_index_; }

 private:
  std::vector<std::string> names_;
  std::vector<TimeNs> deadlines_;
  TimeNs final_deadline_ = 0;
  ActionIndex last_deadline_index_ = 0;
};

/// Convenience: n actions named "<prefix>0".."<prefix>{n-1}", all deadline-free
/// except the last, which gets `budget`. The common single-global-deadline
/// shape used throughout the paper's evaluation (D = 30 s).
ScheduledApp make_uniform_app(ActionIndex n, TimeNs budget,
                              const std::string& prefix = "a");

}  // namespace speedqm
