// Baseline Quality Managers used by the ablation benches.
//
//  * ConstantQualityManager — open-loop: always the same quality. The
//    "no controller" reference; safe only if the constant quality's total
//    worst case fits the budget.
//  * Numeric managers over the Safe / Average policy engines act as the
//    remaining baselines (construct a PolicyEngine with PolicyKind::kSafe /
//    kAverage and wrap it in NumericManager); this header adds a couple of
//    convenience factories for them.
#pragma once

#include <memory>

#include "core/manager.hpp"
#include "core/numeric_manager.hpp"
#include "core/policy.hpp"

namespace speedqm {

/// Open-loop manager: fixed quality, no adaptation, zero overhead.
class ConstantQualityManager final : public QualityManager {
 public:
  explicit ConstantQualityManager(Quality q) : q_(q) {}

  Decision decide(StateIndex, TimeNs) override {
    Decision d;
    d.quality = q_;
    d.relax_steps = 1;
    d.ops = 0;
    d.feasible = true;
    return d;
  }

  std::string name() const override {
    return "constant-q" + std::to_string(q_);
  }

 private:
  Quality q_;
};

/// Clairvoyant step-limited manager used in tests: wraps another manager but
/// forces relax_steps to 1 (isolates the effect of relaxation).
class NoRelaxation final : public QualityManager {
 public:
  explicit NoRelaxation(QualityManager& inner) : inner_(&inner) {}

  Decision decide(StateIndex s, TimeNs t) override {
    Decision d = inner_->decide(s, t);
    d.relax_steps = 1;
    return d;
  }

  std::string name() const override { return inner_->name() + "-norelax"; }
  std::size_t memory_bytes() const override { return inner_->memory_bytes(); }
  std::size_t num_table_integers() const override {
    return inner_->num_table_integers();
  }
  void reset() override { inner_->reset(); }

 private:
  QualityManager* inner_;
};

}  // namespace speedqm
