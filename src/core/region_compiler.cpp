#include "core/region_compiler.hpp"

#include <chrono>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "support/contract.hpp"

namespace speedqm {

namespace {

constexpr std::uint32_t kRegionMagic = 0x53514D52;      // "SQMR"
constexpr std::uint32_t kRelaxationMagic = 0x53514D58;  // "SQMX"
constexpr std::uint32_t kFormatVersion = 1;            // flat 64-bit body
constexpr std::uint32_t kFormatVersionCompressed = 2;  // delta-coded body

void write_u32(std::ostream& out, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  out.write(reinterpret_cast<const char*>(b), 4);
}

void write_i64(std::ostream& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>((u >> (8 * i)) & 0xFF);
  out.write(reinterpret_cast<const char*>(b), 8);
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (!in) throw std::runtime_error("RegionCompiler: truncated stream");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::int64_t read_i64(std::istream& in) {
  unsigned char b[8];
  in.read(reinterpret_cast<char*>(b), 8);
  if (!in) throw std::runtime_error("RegionCompiler: truncated stream");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return static_cast<std::int64_t>(v);
}

void write_i64_array(std::ostream& out, const std::vector<TimeNs>& data) {
  for (TimeNs v : data) write_i64(out, v);
}

std::vector<TimeNs> read_i64_array(std::istream& in, std::size_t count) {
  std::vector<TimeNs> data(count);
  for (auto& v : data) v = read_i64(in);
  return data;
}

}  // namespace

QualityRegionTable RegionCompiler::compile_regions(const PolicyEngine& engine) {
  return QualityRegionTable(engine);
}

RelaxationTable RegionCompiler::compile_relaxation(
    const PolicyEngine& engine, const QualityRegionTable& regions,
    std::vector<int> rho, ArenaLayout layout) {
  return RelaxationTable(engine, regions, std::move(rho), layout);
}

CompilationStats RegionCompiler::measure(const PolicyEngine& engine,
                                         const std::vector<int>& rho) {
  const auto start = std::chrono::steady_clock::now();
  const QualityRegionTable regions(engine);
  const RelaxationTable relaxation(engine, regions, rho);
  const auto stop = std::chrono::steady_clock::now();

  CompilationStats stats;
  stats.region_integers = regions.num_integers();
  stats.region_bytes = regions.memory_bytes();
  stats.relaxation_integers = relaxation.num_integers();
  stats.relaxation_bytes = relaxation.memory_bytes();
  stats.compile_seconds = std::chrono::duration<double>(stop - start).count();
  return stats;
}

void RegionCompiler::save_regions(const QualityRegionTable& table, std::ostream& out) {
  write_u32(out, kRegionMagic);
  write_u32(out, kFormatVersion);
  write_u32(out, static_cast<std::uint32_t>(table.num_states()));
  write_u32(out, static_cast<std::uint32_t>(table.num_levels()));
  write_i64_array(out, table.raw());
  if (!out) throw std::runtime_error("RegionCompiler: write failed");
}

namespace {

/// Reads the shared region header, returning the stream's body version
/// (1 = flat, 2 = compressed) with dimensions validated.
std::uint32_t read_region_header(std::istream& in, StateIndex& n, int& nq) {
  if (read_u32(in) != kRegionMagic)
    throw std::runtime_error("RegionCompiler: bad region-table magic");
  const std::uint32_t version = read_u32(in);
  if (version != kFormatVersion && version != kFormatVersionCompressed)
    throw std::runtime_error("RegionCompiler: unsupported region-table version");
  n = static_cast<StateIndex>(read_u32(in));
  nq = static_cast<int>(read_u32(in));
  SPEEDQM_REQUIRE(n > 0 && nq > 0, "RegionCompiler: corrupt dimensions");
  return version;
}

}  // namespace

QualityRegionTable RegionCompiler::load_regions(std::istream& in) {
  StateIndex n = 0;
  int nq = 0;
  const std::uint32_t version = read_region_header(in, n, nq);
  if (version == kFormatVersionCompressed) {
    // Cross-load: decompress a v2 stream into the flat table (exact).
    return QualityRegionTable(
        n, nq, CompressedTdTable::load_body(in, n, nq).to_flat());
  }
  auto data = read_i64_array(in, n * static_cast<std::size_t>(nq));
  return QualityRegionTable(n, nq, std::move(data));
}

void RegionCompiler::save_regions_compressed(const CompressedTdTable& table,
                                             std::ostream& out) {
  write_u32(out, kRegionMagic);
  write_u32(out, kFormatVersionCompressed);
  write_u32(out, static_cast<std::uint32_t>(table.num_states()));
  write_u32(out, static_cast<std::uint32_t>(table.num_levels()));
  table.save_body(out);
  if (!out) throw std::runtime_error("RegionCompiler: write failed");
}

CompressedTdTable RegionCompiler::load_regions_compressed(std::istream& in) {
  StateIndex n = 0;
  int nq = 0;
  const std::uint32_t version = read_region_header(in, n, nq);
  if (version == kFormatVersion) {
    // Cross-load: compress a v1 flat stream (exact round-trip).
    return CompressedTdTable(n, nq,
                             read_i64_array(in, n * static_cast<std::size_t>(nq)));
  }
  return CompressedTdTable::load_body(in, n, nq);
}

void RegionCompiler::save_regions_compressed_file(const CompressedTdTable& table,
                                                  const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("RegionCompiler: cannot open " + path);
  save_regions_compressed(table, out);
}

CompressedTdTable RegionCompiler::load_regions_compressed_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("RegionCompiler: cannot open " + path);
  return load_regions_compressed(in);
}

void RegionCompiler::save_regions_file(const QualityRegionTable& table,
                                       const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("RegionCompiler: cannot open " + path);
  save_regions(table, out);
}

QualityRegionTable RegionCompiler::load_regions_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("RegionCompiler: cannot open " + path);
  return load_regions(in);
}

void RegionCompiler::save_relaxation(const RelaxationTable& table, std::ostream& out) {
  write_u32(out, kRelaxationMagic);
  write_u32(out, kFormatVersion);
  write_u32(out, static_cast<std::uint32_t>(table.num_states()));
  write_u32(out, static_cast<std::uint32_t>(table.num_levels()));
  write_u32(out, static_cast<std::uint32_t>(table.rho().size()));
  for (int r : table.rho()) write_u32(out, static_cast<std::uint32_t>(r));
  write_i64_array(out, table.raw_upper());
  write_i64_array(out, table.raw_lower());
  if (!out) throw std::runtime_error("RegionCompiler: write failed");
}

RelaxationTable RegionCompiler::load_relaxation(std::istream& in) {
  if (read_u32(in) != kRelaxationMagic)
    throw std::runtime_error("RegionCompiler: bad relaxation-table magic");
  if (read_u32(in) != kFormatVersion)
    throw std::runtime_error("RegionCompiler: unsupported relaxation-table version");
  const auto n = static_cast<StateIndex>(read_u32(in));
  const auto nq = static_cast<int>(read_u32(in));
  const auto rho_size = static_cast<std::size_t>(read_u32(in));
  SPEEDQM_REQUIRE(n > 0 && nq > 0 && rho_size > 0, "RegionCompiler: corrupt header");
  std::vector<int> rho(rho_size);
  for (auto& r : rho) r = static_cast<int>(read_u32(in));
  const std::size_t plane = rho_size * n * static_cast<std::size_t>(nq);
  auto upper = read_i64_array(in, plane);
  auto lower = read_i64_array(in, plane);
  return RelaxationTable(n, nq, std::move(rho), std::move(upper), std::move(lower));
}

void RegionCompiler::save_relaxation_file(const RelaxationTable& table,
                                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("RegionCompiler: cannot open " + path);
  save_relaxation(table, out);
}

RelaxationTable RegionCompiler::load_relaxation_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("RegionCompiler: cannot open " + path);
  return load_relaxation(in);
}

}  // namespace speedqm
