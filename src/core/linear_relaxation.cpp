#include "core/linear_relaxation.hpp"

#include <algorithm>
#include <cmath>

#include "support/contract.hpp"

namespace speedqm {

namespace {

constexpr int kQ16 = 16;

/// Floor division by 2^16 (conservative for upper borders).
TimeNs floor_shift(std::int64_t v) {
  return v >= 0 ? (v >> kQ16) : -((-v + ((std::int64_t{1} << kQ16) - 1)) >> kQ16);
}

/// Ceil division by 2^16 (conservative for lower borders).
TimeNs ceil_shift(std::int64_t v) {
  return v >= 0 ? ((v + ((std::int64_t{1} << kQ16) - 1)) >> kQ16) : -((-v) >> kQ16);
}

TimeNs eval_upper(const LinearBorder& b, StateIndex s) {
  return b.offset + floor_shift(b.slope_q16 * static_cast<std::int64_t>(s));
}

TimeNs eval_lower(const LinearBorder& b, StateIndex s) {
  return b.offset + ceil_shift(b.slope_q16 * static_cast<std::int64_t>(s));
}

/// Fits offset for a given slope so the line stays below every sample
/// (upper border): offset = min_s (y(s) - slope*s/2^16), exact integers.
TimeNs fit_offset_below(const std::vector<TimeNs>& y, std::int64_t slope_q16) {
  TimeNs best = kTimePlusInf;
  for (std::size_t s = 0; s < y.size(); ++s) {
    best = std::min(best, y[s] - floor_shift(slope_q16 * static_cast<std::int64_t>(s)));
  }
  return best;
}

TimeNs fit_offset_above(const std::vector<TimeNs>& y, std::int64_t slope_q16) {
  TimeNs best = kTimeMinusInf;
  for (std::size_t s = 0; s < y.size(); ++s) {
    best = std::max(best, y[s] - ceil_shift(slope_q16 * static_cast<std::int64_t>(s)));
  }
  return best;
}

/// Total covered value of the below-line with the given slope (objective
/// for the concave maximization over the slope).
double coverage_below(const std::vector<TimeNs>& y, double slope) {
  double min_off = 1e300;
  for (std::size_t s = 0; s < y.size(); ++s) {
    min_off = std::min(min_off, static_cast<double>(y[s]) -
                                    slope * static_cast<double>(s));
  }
  const double n = static_cast<double>(y.size());
  return n * min_off + slope * n * (n - 1) / 2.0;
}

double coverage_above(const std::vector<TimeNs>& y, double slope) {
  double max_off = -1e300;
  for (std::size_t s = 0; s < y.size(); ++s) {
    max_off = std::max(max_off, static_cast<double>(y[s]) -
                                    slope * static_cast<double>(s));
  }
  const double n = static_cast<double>(y.size());
  return n * max_off + slope * n * (n - 1) / 2.0;
}

/// Ternary search for the best slope. `below` selects the objective
/// direction (maximize covered area under the line vs minimize above it).
double search_slope(const std::vector<TimeNs>& y, bool below) {
  if (y.size() < 2) return 0.0;
  double lo = 1e300, hi = -1e300;
  for (std::size_t s = 1; s < y.size(); ++s) {
    const double d = static_cast<double>(y[s] - y[s - 1]);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  if (lo > hi) return 0.0;
  for (int iter = 0; iter < 120 && hi - lo > 1e-6; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    const double g1 = below ? coverage_below(y, m1) : -coverage_above(y, m1);
    const double g2 = below ? coverage_below(y, m2) : -coverage_above(y, m2);
    if (g1 < g2) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  return (lo + hi) / 2.0;
}

LinearBorder fit_upper(const std::vector<TimeNs>& y) {
  LinearBorder b;
  for (TimeNs v : y) {
    if (v >= kTimePlusInf || v <= kTimeMinusInf) return b;  // invalid slice
  }
  const double slope = search_slope(y, /*below=*/true);
  b.slope_q16 = static_cast<std::int64_t>(
      std::floor(slope * static_cast<double>(std::int64_t{1} << kQ16)));
  b.offset = fit_offset_below(y, b.slope_q16);
  b.valid = true;
  return b;
}

LinearBorder fit_lower(const std::vector<TimeNs>& y) {
  LinearBorder b;
  for (TimeNs v : y) {
    if (v >= kTimePlusInf || v <= kTimeMinusInf) return b;
  }
  const double slope = search_slope(y, /*below=*/false);
  b.slope_q16 = static_cast<std::int64_t>(
      std::ceil(slope * static_cast<double>(std::int64_t{1} << kQ16)));
  b.offset = fit_offset_above(y, b.slope_q16);
  b.valid = true;
  return b;
}

}  // namespace

LinearRelaxationTable::LinearRelaxationTable(const QualityRegionTable& regions,
                                             const RelaxationTable& exact)
    : n_(exact.num_states()), nq_(exact.num_levels()), rho_(exact.rho()) {
  SPEEDQM_REQUIRE(regions.num_states() == n_ && regions.num_levels() == nq_,
                  "LinearRelaxationTable: region/exact table mismatch");
  upper_.resize(rho_.size() * static_cast<std::size_t>(nq_));
  lower_.resize(rho_.size() * static_cast<std::size_t>(nq_));

  std::vector<TimeNs> samples;
  for (std::size_t r_idx = 0; r_idx < rho_.size(); ++r_idx) {
    const auto r = static_cast<StateIndex>(rho_[r_idx]);
    if (r > n_) continue;  // borders stay invalid
    const StateIndex last = n_ - r;  // states 0..last have r actions left
    for (Quality q = 0; q < nq_; ++q) {
      samples.clear();
      for (StateIndex s = 0; s <= last; ++s) {
        samples.push_back(exact.upper(s, q, rho_[r_idx]));
      }
      upper_[idx(r_idx, q)] = fit_upper(samples);

      if (q == nq_ - 1) {
        // qmax has no lower constraint; mark as a valid "always -inf" line.
        LinearBorder open;
        open.valid = true;
        open.offset = kTimeMinusInf;
        open.slope_q16 = 0;
        lower_[idx(r_idx, q)] = open;
      } else {
        samples.clear();
        for (StateIndex s = 0; s <= last; ++s) {
          samples.push_back(regions.td(s + r - 1, q + 1));
        }
        lower_[idx(r_idx, q)] = fit_lower(samples);
      }
    }
  }
}

std::size_t LinearRelaxationTable::idx(std::size_t r_idx, Quality q) const {
  SPEEDQM_REQUIRE(q >= 0 && q < nq_, "LinearRelaxationTable: bad quality");
  return r_idx * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q);
}

const LinearBorder& LinearRelaxationTable::upper_border(std::size_t r_idx,
                                                        Quality q) const {
  return upper_[idx(r_idx, q)];
}

const LinearBorder& LinearRelaxationTable::lower_border(std::size_t r_idx,
                                                        Quality q) const {
  return lower_[idx(r_idx, q)];
}

TimeNs LinearRelaxationTable::upper(StateIndex s, Quality q, int r) const {
  const auto it = std::find(rho_.begin(), rho_.end(), r);
  SPEEDQM_REQUIRE(it != rho_.end(), "LinearRelaxationTable: r not in rho");
  SPEEDQM_REQUIRE(s < n_, "LinearRelaxationTable: state out of range");
  if (static_cast<StateIndex>(r) > n_ - s) return kTimeMinusInf;
  const auto& b = upper_border(static_cast<std::size_t>(it - rho_.begin()), q);
  if (!b.valid) return kTimeMinusInf;
  return eval_upper(b, s);
}

TimeNs LinearRelaxationTable::lower(StateIndex s, Quality q, int r) const {
  const auto it = std::find(rho_.begin(), rho_.end(), r);
  SPEEDQM_REQUIRE(it != rho_.end(), "LinearRelaxationTable: r not in rho");
  SPEEDQM_REQUIRE(s < n_, "LinearRelaxationTable: state out of range");
  const auto& b = lower_border(static_cast<std::size_t>(it - rho_.begin()), q);
  if (!b.valid) return kTimePlusInf;  // unsatisfiable: t > +inf never holds
  if (b.offset <= kTimeMinusInf) return kTimeMinusInf;
  return eval_lower(b, s);
}

bool LinearRelaxationTable::contains(StateIndex s, TimeNs t, Quality q,
                                     int r) const {
  if (static_cast<StateIndex>(r) > n_ - s) return false;
  const TimeNs up = upper(s, q, r);
  const TimeNs lo = lower(s, q, r);
  return lo < t && t <= up;
}

int LinearRelaxationTable::max_relaxation(StateIndex s, TimeNs t, Quality q,
                                          std::uint64_t* ops) const {
  std::uint64_t local_ops = 0;
  int chosen = 1;
  for (std::size_t r_idx = rho_.size(); r_idx-- > 0;) {
    ++local_ops;
    const auto r = static_cast<StateIndex>(rho_[r_idx]);
    if (r > n_ - s) continue;
    const auto& ub = upper_[idx(r_idx, q)];
    const auto& lb = lower_[idx(r_idx, q)];
    if (!ub.valid || !lb.valid) continue;
    const TimeNs up = eval_upper(ub, s);
    const TimeNs lo =
        lb.offset <= kTimeMinusInf ? kTimeMinusInf : eval_lower(lb, s);
    if (lo < t && t <= up) {
      chosen = rho_[r_idx];
      break;
    }
  }
  if (ops) *ops += local_ops;
  return chosen;
}

double LinearRelaxationTable::mean_upper_gap(const RelaxationTable& exact,
                                             Quality q, int r) const {
  const auto it = std::find(rho_.begin(), rho_.end(), r);
  SPEEDQM_REQUIRE(it != rho_.end(), "mean_upper_gap: r not in rho");
  const auto r_idx = static_cast<std::size_t>(it - rho_.begin());
  const auto& b = upper_border(r_idx, q);
  if (!b.valid || static_cast<StateIndex>(r) > n_) return 0.0;
  double gap = 0;
  const StateIndex last = n_ - static_cast<StateIndex>(r);
  for (StateIndex s = 0; s <= last; ++s) {
    gap += static_cast<double>(exact.upper(s, q, r) - eval_upper(b, s));
  }
  return gap / static_cast<double>(last + 1);
}

}  // namespace speedqm
