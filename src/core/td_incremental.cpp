#include "core/td_incremental.hpp"

#include <algorithm>

#include "core/application.hpp"
#include "core/timing_model.hpp"
#include "support/contract.hpp"

namespace speedqm {

namespace {

/// Best achievable G - M inside one segment; guarded so the +inf sentinel
/// never enters arithmetic (matches td_table_mixed).
inline TimeNs segment_best(TimeNs min_g, TimeNs m) {
  return (min_g >= kTimePlusInf) ? kTimePlusInf : min_g - m;
}

}  // namespace

IncrementalTdState::IncrementalTdState(const PolicyEngine& engine)
    : engine_(&engine) {
  lanes_.resize(static_cast<std::size_t>(engine.num_levels()));
}

std::size_t IncrementalTdState::Lane::memory_bytes() const {
  return m.capacity() * sizeof(TimeNs) + min_g.capacity() * sizeof(TimeNs) +
         (children.capacity() + child_start.capacity() + child_count.capacity()) *
             sizeof(std::uint32_t) +
         (roots.capacity() + stack.capacity()) * sizeof(Entry);
}

std::size_t IncrementalTdState::num_compiled_lanes() const {
  std::size_t count = 0;
  for (const auto& lane : lanes_) count += lane ? 1 : 0;
  return count;
}

std::size_t IncrementalTdState::memory_bytes() const {
  std::size_t bytes = safe_suffix_min_g_.capacity() * sizeof(TimeNs);
  for (const auto& lane : lanes_) {
    if (lane) bytes += lane->memory_bytes();
  }
  return bytes;
}

void IncrementalTdState::rewind() {
  for (auto& lane : lanes_) {
    if (!lane) continue;
    lane->stack = lane->roots;
    lane->pos = 0;
  }
}

void IncrementalTdState::clear() {
  for (auto& lane : lanes_) lane.reset();
  safe_suffix_min_g_.clear();
  safe_suffix_min_g_.shrink_to_fit();
}

void IncrementalTdState::ensure_safe_suffix(std::uint64_t* ops) {
  if (!safe_suffix_min_g_.empty()) return;
  const ScheduledApp& app = engine_->app();
  const TimingModel& tm = engine_->timing();
  const ActionIndex n = app.size();
  const TimeNs* dl = app.deadline_data();
  safe_suffix_min_g_.assign(n, kTimePlusInf);
  TimeNs suffix = kTimePlusInf;
  for (ActionIndex s = n; s-- > 0;) {
    const TimeNs d = dl[s];
    if (d < kTimePlusInf) {
      suffix = std::min(suffix, d + tm.cwc_qmin_suffix_unchecked(s + 1));
    }
    safe_suffix_min_g_[s] = suffix;
  }
  if (ops) *ops += n;
}

void IncrementalTdState::compile_lane(Lane& lane, Quality q,
                                      std::uint64_t* ops) const {
  // The backward sweep of PolicyEngine::td_table_mixed, with two changes:
  // popped segments are recorded as the pushing position's *children*
  // (they are exactly the records revealed when that position is later
  // removed from the chain), and only the state-0 chain is materialized —
  // no tD column is stored.
  const ScheduledApp& app = engine_->app();
  const TimingModel& tm = engine_->timing();
  const ActionIndex n = app.size();
  const TimeNs* dl = app.deadline_data();
  const bool mixed = engine_->kind() == PolicyKind::kMixed;

  lane.m.assign(n, 0);
  lane.min_g.assign(n, kTimePlusInf);
  lane.child_start.assign(n, 0);
  lane.child_count.assign(n, 0);
  lane.children.clear();
  lane.children.reserve(n);

  std::vector<std::uint32_t> build;  // chain positions, back = leftmost
  build.reserve(64);

  for (ActionIndex j = n; j-- > 0;) {
    // kAverage reuses the machinery with M == 0: the forest degenerates to
    // a suffix-min chain over G_av(k) = D(k) - Av_q(k+1).
    const TimeNs m_j = mixed ? tm.cav_prefix_unchecked(j, q) +
                                   tm.cwc_unchecked(j, q) +
                                   tm.cwc_qmin_suffix_unchecked(j + 1)
                             : 0;
    const TimeNs d = dl[j];
    TimeNs min_g = kTimePlusInf;
    if (d < kTimePlusInf) {
      min_g = mixed ? d + tm.cwc_qmin_suffix_unchecked(j + 1)
                    : d - tm.cav_prefix_unchecked(j + 1, q);
    }
    lane.child_start[j] = static_cast<std::uint32_t>(lane.children.size());
    while (!build.empty() && lane.m[build.back()] <= m_j) {
      const std::uint32_t c = build.back();
      build.pop_back();
      lane.children.push_back(c);
      min_g = std::min(min_g, lane.min_g[c]);
    }
    lane.child_count[j] = static_cast<std::uint32_t>(lane.children.size()) -
                          lane.child_start[j];
    lane.m[j] = m_j;
    lane.min_g[j] = min_g;
    build.push_back(static_cast<std::uint32_t>(j));
  }

  // What survived the sweep is the state-0 chain (leftmost = build.back()).
  // Entries are stored bottom-first so suffix_best accumulates rightward
  // bests as the stack is (re)built toward the head.
  lane.roots.clear();
  lane.roots.reserve(build.size());
  TimeNs below = kTimePlusInf;
  for (const std::uint32_t pos : build) {
    below = std::min(segment_best(lane.min_g[pos], lane.m[pos]), below);
    lane.roots.push_back(Entry{pos, below});
  }
  lane.stack = lane.roots;
  lane.pos = 0;
  // Charge the compile like the td_online sweep it replaces (~2 ops per
  // action), so amortization is visible in the same currency.
  if (ops) *ops += 2 * static_cast<std::uint64_t>(n);
}

IncrementalTdState::Lane& IncrementalTdState::lane_for(Quality q,
                                                       std::uint64_t* ops) {
  auto& slot = lanes_[static_cast<std::size_t>(q)];
  if (!slot) {
    slot = std::make_unique<Lane>();
    compile_lane(*slot, q, ops);
  }
  return *slot;
}

void IncrementalTdState::advance_lane(Lane& lane, StateIndex s,
                                      std::uint64_t* ops) const {
  if (lane.pos > s) {
    // Backward probe: rewind to the compiled state-0 chain and re-advance.
    lane.stack = lane.roots;
    lane.pos = 0;
    if (ops) *ops += lane.roots.size();
  }
  std::uint64_t local_ops = 0;
  while (lane.pos < s) {
    // Remove the chain head (always at position lane.pos) and restore the
    // records it was hiding. Children are stored in increasing position
    // order; pushing them in reverse leaves the lowest position on top.
    SPEEDQM_ASSERT(!lane.stack.empty() && lane.stack.back().pos == lane.pos,
                   "IncrementalTdState: chain head out of sync");
    const std::uint32_t head = lane.stack.back().pos;
    lane.stack.pop_back();
    ++local_ops;
    const std::uint32_t first = lane.child_start[head];
    for (std::uint32_t i = lane.child_count[head]; i-- > 0;) {
      const std::uint32_t c = lane.children[first + i];
      const TimeNs below =
          lane.stack.empty() ? kTimePlusInf : lane.stack.back().suffix_best;
      lane.stack.push_back(
          Entry{c, std::min(segment_best(lane.min_g[c], lane.m[c]), below)});
      ++local_ops;
    }
    ++lane.pos;
  }
  if (ops) *ops += local_ops;
}

TimeNs IncrementalTdState::td(StateIndex s, Quality q, std::uint64_t* ops) {
  SPEEDQM_REQUIRE(s < engine_->num_states(),
                  "IncrementalTdState: state out of range");
  SPEEDQM_REQUIRE(engine_->timing().valid_quality(q),
                  "IncrementalTdState: quality out of range");
  const TimingModel& tm = engine_->timing();
  if (ops) ++*ops;

  if (engine_->kind() == PolicyKind::kSafe) {
    // Quality enters Csf only through the first action: one shared
    // suffix-min array answers every (s, q) in O(1).
    ensure_safe_suffix(ops);
    const TimeNs suffix = safe_suffix_min_g_[s];
    if (suffix >= kTimePlusInf) return kTimePlusInf;
    return suffix - tm.cwc_unchecked(s, q) - tm.cwc_qmin_suffix_unchecked(s + 1);
  }

  Lane& lane = lane_for(q, ops);
  advance_lane(lane, s, ops);
  SPEEDQM_ASSERT(!lane.stack.empty() && lane.stack.back().pos == s,
                 "IncrementalTdState: chain head out of sync after advance");
  const TimeNs best = lane.stack.back().suffix_best;
  if (best >= kTimePlusInf) return kTimePlusInf;
  return tm.cav_prefix_unchecked(s, q) + best;
}

Decision IncrementalTdState::decide(StateIndex s, TimeNs t, Quality warm_hint) {
  return engine_->decide_incremental(*this, s, t, warm_hint);
}

}  // namespace speedqm
