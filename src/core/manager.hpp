// Quality Manager interface (Definition 2).
//
// A Quality Manager maps the observed state (s, t) — s actions completed,
// actual elapsed time t — to a quality level for the next action. The
// extended Decision also carries a relaxation step count (how many actions
// the decision covers) and an abstract operation count used by the
// simulator's overhead model.
//
// Ops convention (uniform across the numeric, tabled and region managers so
// bench_overhead_pct / bench_micro_managers compare like with like): every
// quality probe costs one op, plus whatever evaluating the probe costs —
// ~2 ops per scanned remaining action for an online tD sweep, nothing extra
// for a precomputed-table read. See core/decision_search.hpp.
#pragma once

#include <cstddef>
#include <string>

#include "core/types.hpp"
#include "support/time.hpp"

namespace speedqm {

/// Abstract Quality Manager Γ : S x R+ -> Q (plus relaxation metadata).
class QualityManager {
 public:
  virtual ~QualityManager() = default;

  /// The decision Γ(s, t) for state s in 0..n-1 at actual time t.
  virtual Decision decide(StateIndex s, TimeNs t) = 0;

  /// Human-readable identifier used by benches and traces.
  virtual std::string name() const = 0;

  /// Bytes of precomputed symbolic data this manager carries (0 for the
  /// numeric manager) — the paper's memory-overhead metric.
  virtual std::size_t memory_bytes() const { return 0; }

  /// Count of precomputed integers (the paper reports table sizes this way).
  virtual std::size_t num_table_integers() const { return 0; }

  /// Re-arms per-cycle internal state (if any). Called by the executor at
  /// the start of every cycle.
  virtual void reset() {}
};

}  // namespace speedqm
