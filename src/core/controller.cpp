#include "core/controller.hpp"

#include <algorithm>

#include "support/contract.hpp"

namespace speedqm {

double CycleResult::mean_quality() const {
  if (steps.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : steps) sum += static_cast<double>(s.quality);
  return sum / static_cast<double>(steps.size());
}

std::vector<Quality> CycleResult::qualities() const {
  std::vector<Quality> qs;
  qs.reserve(steps.size());
  for (const auto& s : steps) qs.push_back(s.quality);
  return qs;
}

CycleResult run_cycle(const ScheduledApp& app, QualityManager& manager,
                      ActualTimeSource& source, TimeNs start_time) {
  const ActionIndex n = app.size();
  CycleResult result;
  result.steps.reserve(n);
  manager.reset();

  TimeNs t = start_time;
  Quality active_quality = kQmin;
  int remaining_coverage = 0;  // actions still covered by the last decision

  for (ActionIndex i = 0; i < n; ++i) {
    StepRecord rec;
    rec.action = i;
    rec.start = t;

    if (remaining_coverage == 0) {
      // The manager observes cycle-relative time (deadlines are
      // cycle-relative); subtract the offset.
      const Decision d = manager.decide(i, t - start_time);
      SPEEDQM_ASSERT(d.relax_steps >= 1, "manager returned relax_steps < 1");
      active_quality = d.quality;
      remaining_coverage =
          std::min<int>(d.relax_steps, static_cast<int>(n - i));
      rec.manager_called = true;
      rec.feasible = d.feasible;
      rec.ops = d.ops;
      rec.relax_steps = remaining_coverage;
      ++result.manager_calls;
      result.total_ops += d.ops;
      if (!d.feasible) ++result.infeasible_decisions;
    }
    --remaining_coverage;

    rec.quality = active_quality;
    rec.duration = source.actual_time(i, active_quality);
    SPEEDQM_REQUIRE(rec.duration >= 0, "actual execution time must be >= 0");
    t += rec.duration;
    rec.end = t;

    if (app.has_deadline(i) && (t - start_time) > app.deadline(i)) {
      ++result.deadline_misses;
    }
    result.steps.push_back(rec);
  }
  result.completion = t;
  return result;
}

}  // namespace speedqm
