// The controlled system PS‖Γ (Definition 2 onward): composition of the
// parameterized application with a Quality Manager.
//
// This is the *pure* composition used to study controller semantics —
// manager invocations take zero time here. The platform simulator
// (sim::Executor) layers call overhead, cycles and metrics on top; keeping
// this layer overhead-free lets the tests check the safety and optimality
// theorems in isolation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/application.hpp"
#include "core/manager.hpp"
#include "core/timing_model.hpp"
#include "core/types.hpp"

namespace speedqm {

/// Supplies the actual execution time C(a_i, q) — unknown to the controller,
/// revealed action by action. Implementations: workload trace replay,
/// adversarial sources in tests, Cwc/Cav echoes.
class ActualTimeSource {
 public:
  virtual ~ActualTimeSource() = default;
  /// Actual duration of action i executed at quality q. The Definition 1
  /// contract is 0 <= result <= Cwc(i, q); sources MAY violate it to test
  /// controller behaviour outside the model.
  virtual TimeNs actual_time(ActionIndex i, Quality q) = 0;
};

/// Source returning exactly Cwc(i, q) — the adversarial in-model worst case.
class WorstCaseSource final : public ActualTimeSource {
 public:
  explicit WorstCaseSource(const TimingModel& tm) : tm_(&tm) {}
  TimeNs actual_time(ActionIndex i, Quality q) override { return tm_->cwc(i, q); }

 private:
  const TimingModel* tm_;
};

/// Source returning exactly Cav(i, q) — the paper's "ideal" case where the
/// constant-quality trajectory is linear in the speed diagram.
class AverageSource final : public ActualTimeSource {
 public:
  explicit AverageSource(const TimingModel& tm) : tm_(&tm) {}
  TimeNs actual_time(ActionIndex i, Quality q) override { return tm_->cav(i, q); }

 private:
  const TimingModel* tm_;
};

/// One executed action in a controlled run.
struct StepRecord {
  ActionIndex action = 0;
  Quality quality = 0;
  TimeNs start = 0;          ///< actual time when the action began
  TimeNs duration = 0;       ///< actual execution time charged
  TimeNs end = 0;            ///< start + duration
  bool manager_called = false;  ///< false while inside a relaxation window
  bool feasible = true;      ///< decision feasibility (when manager_called)
  std::uint64_t ops = 0;     ///< manager ops (when manager_called)
  int relax_steps = 1;       ///< decision coverage (when manager_called)
};

/// Result of one controlled cycle.
struct CycleResult {
  std::vector<StepRecord> steps;
  TimeNs completion = 0;          ///< actual time after the last action
  std::size_t manager_calls = 0;
  std::uint64_t total_ops = 0;
  std::size_t deadline_misses = 0;
  std::size_t infeasible_decisions = 0;

  double mean_quality() const;
  std::vector<Quality> qualities() const;
};

/// Runs one full cycle of PS‖Γ. The manager's relax_steps are honoured:
/// a decision covering r actions suppresses the next r-1 manager calls.
/// `start_time` offsets the cycle (deadlines remain cycle-relative).
CycleResult run_cycle(const ScheduledApp& app, QualityManager& manager,
                      ActualTimeSource& source, TimeNs start_time = 0);

}  // namespace speedqm
