#include "workload/generator.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace speedqm {

namespace {

// ---------------------------------------------------------------------------
// Stateless draws. Same contract as PerturbationCursor: a draw is a pure
// hash of (seed, stream, index) — no cursor, no order — and no libm enters
// any probability, so the emitted script is bit-stable across platforms,
// consumers and rewinds.
// ---------------------------------------------------------------------------

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t draw(std::uint64_t seed, std::uint64_t stream,
                   std::uint64_t index) {
  return mix64(seed + 0x9e3779b97f4a7c15ULL * (stream + 1) +
               0xbf58476d1ce4e5b9ULL * (index + 1));
}

/// Uniform in [0, 1) from the top 53 bits (exact in double).
double draw01(std::uint64_t seed, std::uint64_t stream, std::uint64_t index) {
  return static_cast<double>(draw(seed, stream, index) >> 11) *
         (1.0 / 9007199254740992.0);
}

constexpr std::uint64_t kStaySalt = 0x73746179ULL;    // "stay"
constexpr std::uint64_t kPhaseSalt = 0x70686173ULL;   // "phas"

[[noreturn]] void spec_fail(const std::string& generator,
                            const std::string& what) {
  throw std::runtime_error("workload generator '" + generator +
                           "': " + what);
}

[[noreturn]] void parse_fail(const std::string& what) {
  throw std::runtime_error("workload spec: " + what);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    parse_fail("malformed value '" + value + "' for key '" + key + "'");
  }
}

double parse_f64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    parse_fail("malformed value '" + value + "' for key '" + key + "'");
  }
}

}  // namespace

const char* to_string(WorkloadEventKind kind) {
  switch (kind) {
    case WorkloadEventKind::kJoin: return "join";
    case WorkloadEventKind::kLeave: return "leave";
    case WorkloadEventKind::kFrameCosts: return "frame-costs";
  }
  return "?";
}

void parse_workload_params(const std::string& params, WorkloadSpec& spec) {
  std::size_t pos = 0;
  while (pos < params.size()) {
    std::size_t comma = params.find(',', pos);
    if (comma == std::string::npos) comma = params.size();
    const std::string item = params.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      parse_fail("expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      spec.seed = parse_u64(key, value);
    } else if (key == "cycles") {
      spec.cycles = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "pool") {
      spec.pool_tasks = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "initial") {
      spec.initial_tasks =
          static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "rate") {
      spec.rate = parse_f64(key, value);
    } else if (key == "stay") {
      spec.mean_stay = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "burst-len") {
      spec.burst_len = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "burst") {
      spec.burst_factor = parse_f64(key, value);
    } else if (key == "periods") {
      spec.day_periods =
          static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "period") {
      spec.period = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "duty") {
      spec.duty = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "trace") {
      spec.trace_path = value;
    } else if (key == "budget") {
      spec.frame_budget =
          static_cast<TimeNs>(parse_u64(key, value));
    } else if (key == "tasks") {
      spec.mix.num_tasks =
          static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "factor") {
      spec.mix.budget_factor = parse_f64(key, value);
    } else {
      parse_fail("unknown key '" + key +
                            "' (valid: seed, cycles, pool, initial, rate, "
                            "stay, burst-len, burst, periods, period, duty, "
                            "trace, budget, tasks, factor)");
    }
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

std::map<std::string, WorkloadGeneratorFactory>& registry() {
  static std::map<std::string, WorkloadGeneratorFactory> map;
  return map;
}

void ensure_builtins() {
  static const bool once = [] {
    register_workload_generator("mix", [] {
      return std::unique_ptr<WorkloadGenerator>(new MixAdapterGenerator());
    });
    register_workload_generator("trace-replay", [] {
      return std::unique_ptr<WorkloadGenerator>(new TraceReplayGenerator());
    });
    register_workload_generator("poisson", [] {
      return std::unique_ptr<WorkloadGenerator>(new StochasticArrivalGenerator(
          StochasticArrivalGenerator::Process::kPoisson));
    });
    register_workload_generator("bursty", [] {
      return std::unique_ptr<WorkloadGenerator>(new StochasticArrivalGenerator(
          StochasticArrivalGenerator::Process::kBursty));
    });
    register_workload_generator("diurnal", [] {
      return std::unique_ptr<WorkloadGenerator>(new StochasticArrivalGenerator(
          StochasticArrivalGenerator::Process::kDiurnal));
    });
    register_workload_generator("checkpoint", [] {
      return std::unique_ptr<WorkloadGenerator>(
          new PeriodicCheckpointGenerator());
    });
    return true;
  }();
  (void)once;
}

}  // namespace

void register_workload_generator(const std::string& name,
                                 WorkloadGeneratorFactory factory) {
  if (name.empty() || factory == nullptr) {
    throw std::runtime_error(
        "register_workload_generator: empty name or null factory");
  }
  registry()[name] = factory;
}

std::vector<std::string> workload_generator_names() {
  ensure_builtins();
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& entry : registry()) names.push_back(entry.first);
  return names;
}

std::unique_ptr<WorkloadGenerator> make_workload_generator(
    const std::string& name) {
  ensure_builtins();
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string valid;
    for (const auto& entry : registry()) {
      if (!valid.empty()) valid += ", ";
      valid += entry.first;
    }
    throw std::runtime_error("unknown workload generator '" + name +
                             "' (registered: " + valid + ")");
  }
  return it->second();
}

std::unique_ptr<WorkloadGenerator> open_workload_generator(
    const std::string& name, const WorkloadSpec& spec) {
  auto gen = make_workload_generator(name);
  gen->open(spec);
  return gen;
}

// ---------------------------------------------------------------------------
// Consumers
// ---------------------------------------------------------------------------

ArrivalSchedule drain_arrival_schedule(WorkloadGenerator& gen) {
  if (!gen.emits_arrivals()) {
    throw std::runtime_error("drain_arrival_schedule: generator '" +
                             gen.name() +
                             "' emits frame costs, not arrivals");
  }
  gen.rewind();
  std::vector<ArrivalEvent> events;
  WorkloadEvent e;
  while (gen.next_event(e)) {
    events.push_back(ArrivalEvent{e.cycle, e.task,
                                  e.kind == WorkloadEventKind::kJoin});
  }
  return ArrivalSchedule(std::move(events), gen.spec().pool_tasks,
                         gen.spec().initial_tasks);
}

GeneratorTimeSource::GeneratorTimeSource(WorkloadGenerator& gen,
                                         std::size_t horizon,
                                         ActionIndex num_actions,
                                         int num_levels)
    : gen_(&gen), horizon_(horizon), num_actions_(num_actions),
      num_levels_(num_levels) {
  if (gen.emits_arrivals()) {
    throw std::runtime_error("GeneratorTimeSource: generator '" + gen.name() +
                             "' emits arrivals, not frame costs");
  }
  if (horizon == 0) {
    throw std::runtime_error("GeneratorTimeSource: zero horizon");
  }
  if (num_actions == 0 || num_levels <= 0) {
    throw std::runtime_error("GeneratorTimeSource: empty frame geometry");
  }
}

void GeneratorTimeSource::pull_next() {
  if (!gen_->next_event(event_)) {
    throw std::runtime_error("GeneratorTimeSource: stream of '" +
                             gen_->name() + "' ended before cycle " +
                             std::to_string(current_cycle_));
  }
  if (event_.kind != WorkloadEventKind::kFrameCosts) {
    throw std::runtime_error("GeneratorTimeSource: unexpected " +
                             std::string(to_string(event_.kind)) + " event");
  }
  if (event_.num_actions != num_actions_ ||
      event_.num_levels != num_levels_) {
    throw std::runtime_error(
        "GeneratorTimeSource: stream of '" + gen_->name() + "' carries " +
        std::to_string(event_.num_actions) + "x" +
        std::to_string(event_.num_levels) +
        " frames but the consuming app is " + std::to_string(num_actions_) +
        " actions x " + std::to_string(num_levels_) +
        " levels (trace/mix recorded for a different task set?)");
  }
  have_event_ = true;
}

void GeneratorTimeSource::set_cycle(std::size_t cycle) {
  current_cycle_ = cycle;
  if (have_event_ && event_.cycle == cycle) return;
  if (have_event_ && event_.cycle > cycle) {
    // Backward jump (content wrap): restart the stream and skip forward.
    gen_->rewind();
    have_event_ = false;
  }
  do {
    pull_next();
  } while (event_.cycle < cycle);
  if (event_.cycle != cycle) {
    throw std::runtime_error("GeneratorTimeSource: stream of '" +
                             gen_->name() + "' skipped cycle " +
                             std::to_string(cycle));
  }
}

TimeNs GeneratorTimeSource::actual_time(ActionIndex i, Quality q) {
  if (!have_event_) {
    throw std::runtime_error("GeneratorTimeSource: read before set_cycle");
  }
  if (i >= num_actions_ || q < 0 || q >= num_levels_) {
    throw std::runtime_error(
        "GeneratorTimeSource: read (" + std::to_string(i) + ", " +
        std::to_string(q) + ") outside the " + std::to_string(num_actions_) +
        "x" + std::to_string(num_levels_) + " frame");
  }
  return event_.costs[static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(event_.num_levels) +
                      static_cast<std::size_t>(q)];
}

// ---------------------------------------------------------------------------
// MixAdapterGenerator ("mix")
// ---------------------------------------------------------------------------

const std::string& MixAdapterGenerator::name() const {
  static const std::string n = "mix";
  return n;
}

void MixAdapterGenerator::open(const WorkloadSpec& spec) {
  if (spec.cycles == 0) spec_fail("mix", "zero-cycle horizon");
  if (spec.mix.num_tasks == 0) spec_fail("mix", "empty mix");
  spec_ = spec;
  mix_ = std::make_unique<MultiTaskMix>(spec.mix);
  cycles_ = spec.cycles;
  next_cycle_ = 0;
  frame_.assign(mix_->composed().app().size() *
                    static_cast<std::size_t>(
                        mix_->composed().timing().num_levels()),
                0);
}

bool MixAdapterGenerator::next_event(WorkloadEvent& out) {
  if (!mix_) spec_fail("mix", "next_event before open");
  if (next_cycle_ >= cycles_) return false;
  ComposedCyclicSource& src = mix_->source();
  src.set_cycle(next_cycle_ % src.num_cycles());
  const ActionIndex n = mix_->composed().app().size();
  const int nq = mix_->composed().timing().num_levels();
  for (ActionIndex i = 0; i < n; ++i) {
    for (Quality q = 0; q < nq; ++q) {
      frame_[static_cast<std::size_t>(i) * static_cast<std::size_t>(nq) +
             static_cast<std::size_t>(q)] = src.actual_time(i, q);
    }
  }
  out.kind = WorkloadEventKind::kFrameCosts;
  out.cycle = next_cycle_++;
  out.task = 0;
  out.costs = frame_.data();
  out.num_actions = n;
  out.num_levels = nq;
  return true;
}

void MixAdapterGenerator::rewind() {
  if (!mix_) spec_fail("mix", "rewind before open");
  next_cycle_ = 0;
}

std::size_t MixAdapterGenerator::memory_bytes() const {
  return frame_.capacity() * sizeof(TimeNs);
}

// ---------------------------------------------------------------------------
// TraceReplayGenerator ("trace-replay")
// ---------------------------------------------------------------------------

const std::string& TraceReplayGenerator::name() const {
  static const std::string n = "trace-replay";
  return n;
}

void TraceReplayGenerator::open(const WorkloadSpec& spec) {
  if (spec.trace_path.empty()) spec_fail("trace-replay", "no trace path");
  if (spec.frame_budget < 0) spec_fail("trace-replay", "negative frame budget");
  spec_ = spec;
  reader_ = std::make_unique<TraceStreamReader>(spec.trace_path);
  frame_budget_ = spec.frame_budget;
  // Horizon 0 means "one pass over the recording"; longer horizons replay
  // the content cyclically, re-validating each pass (the file might be
  // swapped under us — streaming reads whatever is there now).
  cycles_ = spec.cycles > 0 ? spec.cycles : reader_->num_cycles();
  next_cycle_ = 0;
}

void TraceReplayGenerator::validate_frame(std::size_t cycle) const {
  const ActionIndex n = reader_->num_actions();
  const int nq = reader_->num_levels();
  const std::string where =
      spec_.trace_path + " cycle " + std::to_string(cycle);
  TimeNs qmin_total = 0;
  for (ActionIndex i = 0; i < n; ++i) {
    const std::size_t row =
        static_cast<std::size_t>(i) * static_cast<std::size_t>(nq);
    TimeNs prev = 0;
    for (Quality q = 0; q < nq; ++q) {
      const TimeNs v = frame_[row + static_cast<std::size_t>(q)];
      if (v < 0) {
        spec_fail("trace-replay", where + ": negative cost at action " +
                                      std::to_string(i) + " quality " +
                                      std::to_string(q));
      }
      if (q > 0 && v < prev) {
        spec_fail("trace-replay",
                  where + ": frame times non-monotone in quality at action " +
                      std::to_string(i) + " (q" + std::to_string(q) + " " +
                      std::to_string(v) + " < q" + std::to_string(q - 1) +
                      " " + std::to_string(prev) + ")");
      }
      prev = v;
    }
    qmin_total += frame_[row];
  }
  if (qmin_total == 0) {
    spec_fail("trace-replay", where + ": zero-cost frame (no content)");
  }
  if (frame_budget_ > 0 && qmin_total > frame_budget_) {
    spec_fail("trace-replay",
              where + ": min-quality frame total " +
                  std::to_string(qmin_total) + " ns exceeds the " +
                  std::to_string(frame_budget_) + " ns frame budget");
  }
}

bool TraceReplayGenerator::next_event(WorkloadEvent& out) {
  if (!reader_) spec_fail("trace-replay", "next_event before open");
  if (next_cycle_ >= cycles_) return false;
  const std::size_t inner = next_cycle_ % reader_->num_cycles();
  if (inner == 0 && reader_->cycles_read() > 0) reader_->rewind();
  if (!reader_->next_frame(frame_)) {
    spec_fail("trace-replay", spec_.trace_path + ": stream ended at cycle " +
                                  std::to_string(next_cycle_));
  }
  validate_frame(next_cycle_);
  out.kind = WorkloadEventKind::kFrameCosts;
  out.cycle = next_cycle_++;
  out.task = 0;
  out.costs = frame_.data();
  out.num_actions = reader_->num_actions();
  out.num_levels = reader_->num_levels();
  return true;
}

void TraceReplayGenerator::rewind() {
  if (!reader_) spec_fail("trace-replay", "rewind before open");
  reader_->rewind();
  next_cycle_ = 0;
}

std::size_t TraceReplayGenerator::memory_bytes() const {
  // One frame resident, whatever the trace length — the O(1) streaming
  // shape the bench gates.
  return frame_.capacity() * sizeof(TimeNs);
}

// ---------------------------------------------------------------------------
// StochasticArrivalGenerator ("poisson" / "bursty" / "diurnal")
// ---------------------------------------------------------------------------

StochasticArrivalGenerator::StochasticArrivalGenerator(Process process)
    : process_(process) {}

const std::string& StochasticArrivalGenerator::name() const {
  static const std::string poisson = "poisson";
  static const std::string bursty = "bursty";
  static const std::string diurnal = "diurnal";
  switch (process_) {
    case Process::kPoisson: return poisson;
    case Process::kBursty: return bursty;
    case Process::kDiurnal: return diurnal;
  }
  return poisson;
}

double StochasticArrivalGenerator::intensity(std::size_t cycle,
                                             const WorkloadSpec& spec) const {
  switch (process_) {
    case Process::kPoisson:
      return 1.0;
    case Process::kBursty: {
      // MMPP-style on-off: phase blocks of burst_len cycles, each block
      // on/off by a stateless coin; on-phases run burst_factor times the
      // base hazard, off-phases run a trickle.
      const std::uint64_t block = cycle / spec.burst_len;
      const bool on = (draw(spec.seed ^ kPhaseSalt, 0, block) & 1) != 0;
      return on ? spec.burst_factor : 0.25;
    }
    case Process::kDiurnal: {
      // Piecewise-linear day curve (triangle peaking at midday) — rational
      // arithmetic only, no libm, so the script is bit-stable everywhere.
      const std::size_t day =
          std::max<std::size_t>(2, spec.cycles / spec.day_periods);
      const double x = static_cast<double>(cycle % day) /
                       static_cast<double>(day);  // in [0, 1)
      const double tri = 1.0 - (x < 0.5 ? (1.0 - 2.0 * x) : (2.0 * x - 1.0));
      return 0.15 + 2.7 * tri;
    }
  }
  return 1.0;
}

void StochasticArrivalGenerator::open(const WorkloadSpec& spec) {
  if (spec.pool_tasks == 0) spec_fail(name(), "empty pool");
  if (spec.initial_tasks > spec.pool_tasks) {
    spec_fail(name(), "more initial tasks than the pool holds");
  }
  if (spec.cycles < 2) spec_fail(name(), "need >= 2 cycles to place events");
  if (!(spec.rate > 0)) spec_fail(name(), "non-positive session rate");
  if (spec.mean_stay == 0) spec_fail(name(), "zero mean session length");
  if (process_ == Process::kBursty && spec.burst_len == 0) {
    spec_fail(name(), "zero burst length");
  }
  if (process_ == Process::kBursty && !(spec.burst_factor >= 1.0)) {
    spec_fail(name(), "burst factor below 1");
  }
  if (process_ == Process::kDiurnal && spec.day_periods == 0) {
    spec_fail(name(), "zero day periods");
  }
  spec_ = spec;
  events_.clear();
  next_ = 0;

  // Session renewal walk per pool task: absent tasks face a per-cycle join
  // hazard shaped by the process intensity; a joining task draws an
  // integer-uniform stay in [1, 2*mean_stay - 1] (mean ≈ mean_stay) and
  // leaves when it expires. Every draw is a pure (seed, task, cycle) hash,
  // so the walk — and therefore the script — is a pure function of the
  // spec.
  const double hazard = spec.rate / static_cast<double>(spec.cycles);
  for (std::size_t task = spec.initial_tasks; task < spec.pool_tasks; ++task) {
    bool present = false;
    std::size_t leave_at = 0;
    for (std::size_t cycle = 1; cycle < spec.cycles; ++cycle) {
      if (present) {
        if (cycle == leave_at) {
          events_.push_back(ArrivalEvent{cycle, task, /*join=*/false});
          present = false;
        }
        continue;
      }
      const double p =
          std::min(0.9, hazard * intensity(cycle, spec));
      if (draw01(spec.seed, task, cycle) < p) {
        events_.push_back(ArrivalEvent{cycle, task, /*join=*/true});
        const std::size_t stay =
            1 + static_cast<std::size_t>(draw(spec.seed ^ kStaySalt, task,
                                              cycle) %
                                         (2 * spec.mean_stay - 1));
        leave_at = cycle + stay;
        present = true;
      }
    }
  }
  // Stream order: by cycle, stable — per-task cycles are strictly
  // increasing, so each task's join/leave alternation survives the sort
  // and the drained ArrivalSchedule validates by construction.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ArrivalEvent& a, const ArrivalEvent& b) {
                     return a.cycle < b.cycle;
                   });
}

bool StochasticArrivalGenerator::next_event(WorkloadEvent& out) {
  if (next_ >= events_.size()) return false;
  const ArrivalEvent& e = events_[next_++];
  out.kind = e.join ? WorkloadEventKind::kJoin : WorkloadEventKind::kLeave;
  out.cycle = e.cycle;
  out.task = e.task;
  out.costs = nullptr;
  out.num_actions = 0;
  out.num_levels = 0;
  return true;
}

void StochasticArrivalGenerator::rewind() { next_ = 0; }

std::size_t StochasticArrivalGenerator::memory_bytes() const {
  return events_.capacity() * sizeof(ArrivalEvent);
}

// ---------------------------------------------------------------------------
// PeriodicCheckpointGenerator ("checkpoint")
// ---------------------------------------------------------------------------

const std::string& PeriodicCheckpointGenerator::name() const {
  static const std::string n = "checkpoint";
  return n;
}

void PeriodicCheckpointGenerator::open(const WorkloadSpec& spec) {
  if (spec.pool_tasks == 0) spec_fail("checkpoint", "empty pool");
  if (spec.initial_tasks > spec.pool_tasks) {
    spec_fail("checkpoint", "more initial tasks than the pool holds");
  }
  if (spec.cycles < 2) {
    spec_fail("checkpoint", "need >= 2 cycles to place events");
  }
  if (spec.period < 2) spec_fail("checkpoint", "period below 2 cycles");
  if (spec.duty == 0 || spec.duty >= spec.period) {
    spec_fail("checkpoint", "duty must be in [1, period)");
  }
  spec_ = spec;
  events_.clear();
  next_ = 0;

  // Each session task checkpoints every `period` cycles at a seeded phase:
  // join (start writing), stay `duty` cycles, leave. duty < period keeps
  // each task's join/leave alternation valid; phases are stateless
  // per-task draws so the stagger replays identically.
  for (std::size_t task = spec.initial_tasks; task < spec.pool_tasks; ++task) {
    const std::size_t phase =
        1 + static_cast<std::size_t>(draw(spec.seed, task, 0) % spec.period);
    for (std::size_t c = phase; c < spec.cycles; c += spec.period) {
      events_.push_back(ArrivalEvent{c, task, /*join=*/true});
      const std::size_t leave = c + spec.duty;
      if (leave >= spec.cycles) break;  // horizon ends mid-checkpoint
      events_.push_back(ArrivalEvent{leave, task, /*join=*/false});
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ArrivalEvent& a, const ArrivalEvent& b) {
                     return a.cycle < b.cycle;
                   });
}

bool PeriodicCheckpointGenerator::next_event(WorkloadEvent& out) {
  if (next_ >= events_.size()) return false;
  const ArrivalEvent& e = events_[next_++];
  out.kind = e.join ? WorkloadEventKind::kJoin : WorkloadEventKind::kLeave;
  out.cycle = e.cycle;
  out.task = e.task;
  out.costs = nullptr;
  out.num_actions = 0;
  out.num_levels = 0;
  return true;
}

void PeriodicCheckpointGenerator::rewind() { next_ = 0; }

std::size_t PeriodicCheckpointGenerator::memory_bytes() const {
  return events_.capacity() * sizeof(ArrivalEvent);
}

}  // namespace speedqm
