// Actual-execution-time traces.
//
// The controller never knows C(a, q) in advance; the workload layer
// synthesizes it. A TraceTimeSource stores, for every cycle (frame), a
// dense [action][quality] table of actual times: the content of an action
// instance (complexity, noise) is sampled once per (cycle, action) so the
// time is consistent across quality levels — choosing a different quality
// replays the *same* content at a different fidelity, exactly like a real
// encoder. This also keeps runs deterministic regardless of the manager's
// choices (the RNG stream does not depend on decisions).
#pragma once

#include <cstdint>
#include <vector>

#include "core/multi_task.hpp"
#include "core/timing_model.hpp"
#include "sim/executor.hpp"

namespace speedqm {

class TraceTimeSource final : public CyclicTimeSource {
 public:
  /// `data` holds num_cycles tables, each row-major [action][quality] of
  /// size num_actions * num_levels.
  TraceTimeSource(ActionIndex num_actions, int num_levels,
                  std::vector<std::vector<TimeNs>> data);

  void set_cycle(std::size_t cycle) override;
  std::size_t num_cycles() const override { return data_.size(); }
  TimeNs actual_time(ActionIndex i, Quality q) override;

  /// Direct (cycle, action, quality) access for analysis and tests.
  TimeNs at(std::size_t cycle, ActionIndex i, Quality q) const;

  ActionIndex num_actions() const { return n_; }
  int num_levels() const { return nq_; }

  /// Fraction of entries that had to be clamped to Cwc during generation
  /// (set by generators; diagnostic only).
  double clamp_fraction() const { return clamp_fraction_; }
  void set_clamp_fraction(double f) { clamp_fraction_ = f; }

  /// Verifies every entry satisfies 0 <= C(i, q) <= Cwc(i, q) and is
  /// non-decreasing in q. Returns the number of violations (0 = the
  /// Definition 1 contract holds for this trace).
  std::size_t count_contract_violations(const TimingModel& tm) const;

 private:
  ActionIndex n_;
  int nq_;
  std::vector<std::vector<TimeNs>> data_;
  std::size_t current_cycle_ = 0;
  double clamp_fraction_ = 0.0;
};

/// Cyclic source over a ComposedSystem: fans set_cycle out to every task's
/// own trace source (each wraps around its own content length) and maps
/// composite actions back to (task, local action) on every read.
class ComposedCyclicSource final : public CyclicTimeSource {
 public:
  ComposedCyclicSource(const ComposedSystem& system,
                       std::vector<CyclicTimeSource*> sources);

  void set_cycle(std::size_t cycle) override;
  /// True content period of the composition, fixed at construction: the
  /// LCM of the per-task trace lengths (each task wraps its own content,
  /// so the joint content repeats at the LCM). Pathological mixes whose
  /// LCM explodes fall back to the longest task's length — shorter tasks
  /// then wrap non-uniformly.
  std::size_t num_cycles() const override;
  TimeNs actual_time(ActionIndex i, Quality q) override;

 private:
  const ComposedSystem* system_;
  std::vector<CyclicTimeSource*> sources_;
  std::size_t num_cycles_ = 1;
};

}  // namespace speedqm
