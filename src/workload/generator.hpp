// Pluggable workload-generator API: workloads as data.
//
// MultiTaskMix/ArrivalSchedule hand-build serving scenarios from two model
// families (MPEG + synthetic). This module turns the scenario space into a
// registry of interchangeable generator backends behind one
// load/get_next-style contract (the codes-workload shape: one API, many
// generator methods; the II-CC-FF separation of source-specific generation
// from a common consumption stream):
//
//   open(spec)        validate the spec and position the stream at its
//                     first event (throws std::runtime_error on a bad
//                     spec — input validation stays on in Release);
//   next_event(out)   emit the next event in cycle order; false = end;
//   rewind()          restart the stream; the replayed event sequence is
//                     IDENTICAL (the seeded-replay contract).
//
// Event stream vocabulary (WorkloadEvent):
//   * kJoin / kLeave   — session arrivals: pool task `task` asks to join /
//                        leaves before cycle `cycle`. Drained into an
//                        ArrivalSchedule they feed serve/AdmissionController
//                        exactly like scripted arrivals.
//   * kFrameCosts      — one cycle of per-frame content: a borrowed
//                        row-major [action][quality] actual-time table,
//                        valid until the next next_event()/rewind() call —
//                        the O(1)-memory streaming contract (a trace file
//                        never needs to fit in memory).
//
// Seeding contract (same as PerturbationCursor): every stochastic draw is
// a STATELESS hash of (seed, stream, index) — no RNG cursor, no draw
// order — so any consumer split (segments, worker counts, rewinds)
// replays the identical stream. No libm transcendental enters any draw
// (cross-platform bit-stability of the event script).
//
// Built-in backends (names registered in generator.cpp, documented in
// docs/scenarios.md — tools/check_docs.py gates that the two stay in
// sync):
//   "mix"          MixAdapterGenerator — wraps MultiTaskMix; the existing
//                  path through the new API, differential-gated
//                  bit-identical (decisions AND Decision.ops);
//   "trace-replay" TraceReplayGenerator — streams a recorded trace file
//                  (workload/trace_io) cycle by cycle in O(1) memory with
//                  on-the-fly period/cost validation;
//   "poisson"      StochasticArrivalGenerator — constant-intensity session
//                  arrivals;
//   "bursty"       StochasticArrivalGenerator — MMPP-style on-off bursts;
//   "diurnal"      StochasticArrivalGenerator — a piecewise-linear
//                  day-curve intensity;
//   "checkpoint"   PeriodicCheckpointGenerator — periodic
//                  checkpoint-restart-style sessions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/arrivals.hpp"
#include "workload/scenarios.hpp"
#include "workload/trace_io.hpp"

namespace speedqm {

enum class WorkloadEventKind {
  kJoin,        ///< pool task asks to join before `cycle`
  kLeave,       ///< pool task leaves before `cycle`
  kFrameCosts,  ///< one cycle of [action][quality] actual times
};

const char* to_string(WorkloadEventKind kind);

/// One event of a generator stream. For kFrameCosts the `costs` table is
/// BORROWED from the generator and only valid until the next next_event()
/// or rewind() call — consumers stream, they do not retain.
struct WorkloadEvent {
  WorkloadEventKind kind = WorkloadEventKind::kJoin;
  std::size_t cycle = 0;  ///< absolute cycle the event fires before
  std::size_t task = 0;   ///< pool task id (kJoin/kLeave)
  const TimeNs* costs = nullptr;  ///< kFrameCosts: row-major [action][quality]
  ActionIndex num_actions = 0;
  int num_levels = 0;
};

/// One spec describes any backend; each backend validates the fields it
/// consumes and ignores the rest. `params` carries backend-specific
/// "key=value,key=value" overrides (parsed by parse_workload_params into
/// the typed fields below — unknown keys are rejected).
struct WorkloadSpec {
  std::uint64_t seed = 20070808;
  std::size_t cycles = 64;  ///< horizon: events fire on cycles [0, cycles)

  // Arrival backends (poisson / bursty / diurnal / checkpoint): pool
  // geometry. Tasks [initial_tasks, pool_tasks) are the session pool.
  std::size_t pool_tasks = 32;
  std::size_t initial_tasks = 24;
  /// Expected sessions per pool task over the horizon (hazard scale).
  double rate = 1.5;
  /// Mean session length in cycles (uniform in [1, 2*mean_stay-1]).
  std::size_t mean_stay = 8;
  /// bursty: on/off phase block length in cycles and on-phase boost.
  std::size_t burst_len = 8;
  double burst_factor = 4.0;
  /// diurnal: number of day periods across the horizon.
  std::size_t day_periods = 2;
  /// checkpoint: checkpoint period and write-burst duty, in cycles.
  std::size_t period = 8;
  std::size_t duty = 2;

  // trace-replay: the recorded trace file and the validation bounds the
  // streaming pass enforces per frame (0 disables the period check).
  std::string trace_path;
  TimeNs frame_budget = 0;  ///< min-quality frame total must fit (if > 0)

  // mix: the MultiTaskMix assembly to adapt (seed/cycle fields above do
  // not override the mix's own spec — the mix IS the content).
  MultiTaskMixSpec mix;
};

/// Applies "key=value,key=value" overrides onto a spec. Accepted keys:
/// seed, cycles, pool, initial, rate, stay, burst-len, burst, periods,
/// period, duty, trace, budget, tasks (mix task count), factor (mix budget
/// factor). Throws std::runtime_error on an unknown key or a malformed
/// value — a typo must never silently fall back to a default.
void parse_workload_params(const std::string& params, WorkloadSpec& spec);

/// The generator-method interface. Lifecycle: construct (via the
/// registry), open(spec) once, then interleave next_event()/rewind()
/// freely. open() on an already-open generator re-opens with the new spec.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Validates the spec and positions the stream before its first event.
  /// Throws std::runtime_error (always on, even in Release) on a spec the
  /// backend cannot serve.
  virtual void open(const WorkloadSpec& spec) = 0;
  /// Emits the next event in cycle order (stable within a cycle). Returns
  /// false at end of stream. Streaming backends may invalidate the
  /// previous event's borrowed buffers.
  virtual bool next_event(WorkloadEvent& out) = 0;
  /// Restarts the stream at the first event. The replayed sequence is
  /// bit-identical to the first pass (seeded-replay contract).
  virtual void rewind() = 0;

  /// Registry name of this backend.
  virtual const std::string& name() const = 0;
  /// True when the stream carries kJoin/kLeave events (drainable into an
  /// ArrivalSchedule); false for frame-cost streams.
  virtual bool emits_arrivals() const = 0;
  /// Resident bytes held by the open stream — the streaming gate pins that
  /// trace replay stays O(frame), independent of trace length.
  virtual std::size_t memory_bytes() const = 0;

  /// The spec this generator was opened with (valid after open()).
  const WorkloadSpec& spec() const { return spec_; }

 protected:
  /// Backends assign this at the top of open().
  WorkloadSpec spec_;
};

// ---------------------------------------------------------------------------
// Registry: string-keyed generator factories, à la codes-workload's method
// table. Built-ins self-register; external code may add its own backends.
// ---------------------------------------------------------------------------

using WorkloadGeneratorFactory = std::unique_ptr<WorkloadGenerator> (*)();

/// Registers a factory under `name` (replacing any previous registration).
void register_workload_generator(const std::string& name,
                                 WorkloadGeneratorFactory factory);

/// Registered names, sorted (built-ins always present).
std::vector<std::string> workload_generator_names();

/// Instantiates the named backend (not yet opened). Throws
/// std::runtime_error listing the registered names when `name` is unknown.
std::unique_ptr<WorkloadGenerator> make_workload_generator(
    const std::string& name);

/// Convenience: make + open in one call.
std::unique_ptr<WorkloadGenerator> open_workload_generator(
    const std::string& name, const WorkloadSpec& spec);

// ---------------------------------------------------------------------------
// Consumers: the two bridges into the existing serving machinery.
// ---------------------------------------------------------------------------

/// Drains an arrival-emitting generator into a validated ArrivalSchedule:
/// generator-driven joins then feed serve/AdmissionController exactly like
/// scripted arrivals. Throws std::runtime_error when the generator emits
/// frame costs instead of arrivals.
ArrivalSchedule drain_arrival_schedule(WorkloadGenerator& gen);

/// CyclicTimeSource over a frame-cost generator: set_cycle(c) pulls events
/// until cycle c's table is resident (rewinding for backward jumps), and
/// actual_time reads it. num_cycles() is the generator horizon, so a
/// horizon-bounded executor run passes absolute cycles straight through —
/// the bridge that runs the executor, bit for bit, off a generator stream.
///
/// The bridge is constructed with the consuming app's frame geometry
/// (num_actions x num_levels) and checks every pulled frame against it: a
/// stream recorded or synthesized at a different geometry (a trace from
/// another task mix, say) throws a std::runtime_error naming both shapes
/// instead of reading the borrowed table out of bounds.
class GeneratorTimeSource final : public CyclicTimeSource {
 public:
  /// `gen` is borrowed, must be open, and must emit frame costs whose
  /// tables are `num_actions` x `num_levels` (the executor app's shape).
  GeneratorTimeSource(WorkloadGenerator& gen, std::size_t horizon,
                      ActionIndex num_actions, int num_levels);

  void set_cycle(std::size_t cycle) override;
  std::size_t num_cycles() const override { return horizon_; }
  TimeNs actual_time(ActionIndex i, Quality q) override;

 private:
  void pull_next();

  WorkloadGenerator* gen_;
  std::size_t horizon_;
  ActionIndex num_actions_;
  int num_levels_;
  WorkloadEvent event_;
  bool have_event_ = false;
  std::size_t current_cycle_ = 0;
};

// ---------------------------------------------------------------------------
// Built-in backends (constructible directly; the registry is the normal
// entry point).
// ---------------------------------------------------------------------------

/// "mix": today's MultiTaskMix content through the generator API. Owns a
/// private MultiTaskMix built from spec.mix (construction is deterministic
/// in the spec, so the streamed tables are bit-identical to any other mix
/// built from an equal spec) and emits one kFrameCosts event per cycle of
/// the horizon.
class MixAdapterGenerator final : public WorkloadGenerator {
 public:
  void open(const WorkloadSpec& spec) override;
  bool next_event(WorkloadEvent& out) override;
  void rewind() override;
  const std::string& name() const override;
  bool emits_arrivals() const override { return false; }
  std::size_t memory_bytes() const override;

 private:
  std::unique_ptr<MultiTaskMix> mix_;
  std::size_t cycles_ = 0;
  std::size_t next_cycle_ = 0;
  std::vector<TimeNs> frame_;
};

/// "trace-replay": streams a recorded trace file cycle by cycle through
/// workload/trace_io's TraceStreamReader — O(frame) resident memory
/// however long the trace — validating each frame on the fly: costs
/// non-negative, non-decreasing in quality (Definition 1 shape), not
/// all-zero, and (when spec.frame_budget > 0) the min-quality frame total
/// fits the budget. A violated frame throws std::runtime_error naming the
/// cycle. The horizon replays the trace cyclically when spec.cycles
/// exceeds the recorded length.
class TraceReplayGenerator final : public WorkloadGenerator {
 public:
  void open(const WorkloadSpec& spec) override;
  bool next_event(WorkloadEvent& out) override;
  void rewind() override;
  const std::string& name() const override;
  bool emits_arrivals() const override { return false; }
  std::size_t memory_bytes() const override;

 private:
  void validate_frame(std::size_t cycle) const;

  std::unique_ptr<TraceStreamReader> reader_;
  TimeNs frame_budget_ = 0;
  std::size_t cycles_ = 0;
  std::size_t next_cycle_ = 0;
  std::vector<TimeNs> frame_;
};

/// "poisson" / "bursty" / "diurnal": stochastic session arrivals. Tasks
/// [initial_tasks, pool_tasks) join and leave under a per-cycle hazard
/// whose intensity profile is the process kind; every draw is a stateless
/// hash of (seed, task, cycle) and session lengths are integer-uniform —
/// no libm, so the script is bit-stable across platforms. Events
/// materialize at open() (the script is small — O(events), not O(trace))
/// and stream in cycle order.
class StochasticArrivalGenerator final : public WorkloadGenerator {
 public:
  enum class Process { kPoisson, kBursty, kDiurnal };
  explicit StochasticArrivalGenerator(Process process);

  void open(const WorkloadSpec& spec) override;
  bool next_event(WorkloadEvent& out) override;
  void rewind() override;
  const std::string& name() const override;
  bool emits_arrivals() const override { return true; }
  std::size_t memory_bytes() const override;

 private:
  double intensity(std::size_t cycle, const WorkloadSpec& spec) const;

  Process process_;
  std::vector<ArrivalEvent> events_;
  std::size_t next_ = 0;
};

/// "checkpoint": periodic checkpoint-restart-style sessions — each session
/// task joins every `period` cycles at a seeded per-task phase, stays for
/// `duty` cycles (the checkpoint write burst), and leaves.
class PeriodicCheckpointGenerator final : public WorkloadGenerator {
 public:
  void open(const WorkloadSpec& spec) override;
  bool next_event(WorkloadEvent& out) override;
  void rewind() override;
  const std::string& name() const override;
  bool emits_arrivals() const override { return true; }
  std::size_t memory_bytes() const override;

 private:
  std::vector<ArrivalEvent> events_;
  std::size_t next_ = 0;
};

}  // namespace speedqm
