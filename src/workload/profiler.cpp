#include "workload/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "support/contract.hpp"

namespace speedqm {

TimingModel profile_timing(const TraceTimeSource& traces,
                           const ProfilerOptions& opts) {
  SPEEDQM_REQUIRE(opts.cycles > 0, "profile_timing: need at least one cycle");
  SPEEDQM_REQUIRE(opts.first_cycle + opts.cycles <= traces.num_cycles(),
                  "profile_timing: training range exceeds available cycles");
  SPEEDQM_REQUIRE(opts.safety_factor >= 1.0,
                  "profile_timing: safety_factor must be >= 1");

  const ActionIndex n = traces.num_actions();
  const int nq = traces.num_levels();
  const auto nq_s = static_cast<std::size_t>(nq);

  std::vector<TimeNs> cav(n * nq_s, 0);
  std::vector<TimeNs> cwc(n * nq_s, 0);

  for (ActionIndex i = 0; i < n; ++i) {
    for (Quality q = 0; q < nq; ++q) {
      double sum = 0;
      TimeNs peak = 0;
      for (std::size_t c = 0; c < opts.cycles; ++c) {
        const TimeNs v = traces.at(opts.first_cycle + c, i, q);
        sum += static_cast<double>(v);
        peak = std::max(peak, v);
      }
      const std::size_t k = i * nq_s + static_cast<std::size_t>(q);
      cav[k] = static_cast<TimeNs>(
          std::llround(sum / static_cast<double>(opts.cycles)));
      cwc[k] = static_cast<TimeNs>(
          std::llround(static_cast<double>(peak) * opts.safety_factor));
    }
  }

  // Enforce the Definition 1 shape: non-decreasing in q and Cav <= Cwc
  // (profiling noise can create tiny inversions at adjacent levels).
  for (ActionIndex i = 0; i < n; ++i) {
    for (Quality q = 1; q < nq; ++q) {
      const std::size_t k = i * nq_s + static_cast<std::size_t>(q);
      cav[k] = std::max(cav[k], cav[k - 1]);
      cwc[k] = std::max(cwc[k], cwc[k - 1]);
    }
    for (Quality q = 0; q < nq; ++q) {
      const std::size_t k = i * nq_s + static_cast<std::size_t>(q);
      cwc[k] = std::max(cwc[k], cav[k]);
    }
  }
  return TimingModel(n, nq, std::move(cav), std::move(cwc));
}

}  // namespace speedqm
