// Synthetic MPEG encoder workload — the paper's evaluation application.
//
// The paper schedules a 7,000-line C MPEG encoder into 1,189 actions with
// 7 quality levels and runs it on 29 frames of 352x288 video (396
// macroblocks per frame). We rebuild the *timing structure* of that
// encoder:
//
//   schedule per frame:  1 frame-setup action, then per macroblock (raster
//                        order) three pipeline actions:
//                          ME  — motion estimation / intra prediction
//                          DCT — transform + quantization
//                          VLC — entropy coding + reconstruction
//                        => 1 + 3 * 396 = 1,189 actions at the paper's size.
//
//   quality levels:      q scales the ME search range (strong effect), the
//                        quantizer fineness (weak effect on DCT, moderate
//                        on VLC bit production).
//
//   content model:       per-macroblock spatial activity follows an AR(1)
//                        field in raster order (neighbouring macroblocks
//                        have similar cost — the locality that makes
//                        control relaxation effective); frames follow a GOP
//                        pattern (I/P and optional B) with different stage
//                        cost profiles; scene changes redraw the activity
//                        field and spike motion cost.
//
// Execution times increase with quality for fixed content (Definition 1),
// and Cwc bounds every generated time by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/application.hpp"
#include "core/timing_model.hpp"
#include "workload/trace_source.hpp"

namespace speedqm {

/// Pipeline stage of a macroblock action.
enum class MpegStage { kFrameSetup, kMotionEstimation, kTransform, kEntropy };

/// Frame coding type.
enum class FrameType { kIntra, kPredicted, kBidirectional };

struct MpegConfig {
  // --- Geometry (defaults = the paper: 352x288, 396 macroblocks). ---
  int mb_columns = 22;
  int mb_rows = 18;
  int num_frames = 29;
  int num_levels = 7;

  // --- GOP structure. ---
  int gop_length = 12;        ///< one I frame every gop_length frames
  bool use_b_frames = false;  ///< insert B,B between P frames when true

  /// When > 0, a hard milestone deadline is placed after every this-many
  /// macroblock rows (slice pacing: a row group must be encoded by its
  /// proportional share of the frame budget). 0 = single final deadline,
  /// the paper's configuration.
  int slice_rows_per_milestone = 0;

  // --- Content dynamics. ---
  double activity_phi = 0.90;      ///< AR(1) correlation across macroblocks
  double activity_sigma = 0.13;    ///< AR(1) innovation stddev
  double activity_min = 0.50;      ///< clamp of the activity factor
  double activity_max = 1.30;
  double scene_change_prob = 0.05; ///< per-frame probability (never frame 0)
  double noise_sigma = 0.04;       ///< per-action multiplicative noise stddev
  double noise_min = 0.85;
  double noise_max = 1.10;

  // --- Stage base costs (microseconds, at quality factor 1, activity 1). ---
  double me_base_us = 1100.0;
  double dct_base_us = 630.0;
  double vlc_base_us = 470.0;
  double setup_base_us = 2700.0;

  // --- Quality scaling: factor(q) = offset + slope * q. ---
  double me_q_offset = 0.55, me_q_slope = 0.15;    ///< search range effect
  double dct_q_offset = 0.80, dct_q_slope = 0.05;  ///< quantizer effect
  double vlc_q_offset = 0.55, vlc_q_slope = 0.12;  ///< bit-production effect
  double setup_q_offset = 1.00, setup_q_slope = 0.02;

  std::uint64_t seed = 20070326;

  int macroblocks() const { return mb_columns * mb_rows; }
  int actions_per_frame() const { return 1 + 3 * macroblocks(); }
};

/// The generated workload bundle.
class MpegWorkload {
 public:
  /// Builds schedule, analytic timing model and per-frame actual-time
  /// traces. `frame_budget` is the deadline placed on the last action of
  /// the frame schedule (cycle-relative).
  MpegWorkload(const MpegConfig& config, TimeNs frame_budget);

  const MpegConfig& config() const { return config_; }
  const ScheduledApp& app() const { return app_; }
  const TimingModel& timing() const { return timing_; }
  TraceTimeSource& traces() { return traces_; }
  const TraceTimeSource& traces() const { return traces_; }

  /// Stage of scheduled action i.
  MpegStage stage_of(ActionIndex i) const;
  /// Coding type of frame f in the generated sequence.
  FrameType frame_type(std::size_t f) const { return frame_types_.at(f); }
  /// Frames at which a scene change was generated.
  const std::vector<std::size_t>& scene_changes() const { return scene_changes_; }

 private:
  MpegConfig config_;
  ScheduledApp app_;
  TimingModel timing_;
  // Declared before traces_: build_traces fills them by reference while
  // constructing the trace tables.
  std::vector<FrameType> frame_types_;
  std::vector<std::size_t> scene_changes_;
  TraceTimeSource traces_;

  // Deferred-init helpers used by the constructor (member-init order:
  // app_, timing_, frame_types_/scene_changes_, then traces_).
  static ScheduledApp build_app(const MpegConfig& c, TimeNs frame_budget);
  static TimingModel build_timing(const MpegConfig& c);
  static TraceTimeSource build_traces(const MpegConfig& c, const TimingModel& tm,
                                      std::vector<FrameType>& types_out,
                                      std::vector<std::size_t>& scenes_out);
};

/// Stage cost factor for quality q (> 0, non-decreasing in q).
double mpeg_stage_quality_factor(const MpegConfig& c, MpegStage stage, Quality q);

/// Frame-type cost factor of a stage (I frames: cheap ME, heavier DCT/VLC;
/// B frames: two-reference ME, lighter VLC).
double mpeg_frame_type_factor(MpegStage stage, FrameType type);

/// Largest frame-type factor reachable for a stage under this config
/// (bounds Cwc; excludes B factors when B frames are disabled).
double mpeg_max_frame_type_factor(const MpegConfig& c, MpegStage stage);

}  // namespace speedqm
