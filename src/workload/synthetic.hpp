// Generic synthetic workload generator.
//
// Produces (application, timing model, actual-time traces) triples from a
// declarative spec — the workhorse for unit tests, property sweeps and
// the non-MPEG examples. Guarantees the Definition 1 contract by
// construction: execution times are non-decreasing in quality and bounded
// by Cwc.
#pragma once

#include <cstdint>
#include <vector>

#include "core/application.hpp"
#include "core/timing_model.hpp"
#include "workload/trace_source.hpp"

namespace speedqm {

/// How Cav grows from qmin to qmax.
enum class QualityCurve {
  kLinear,   ///< evenly spaced levels
  kConcave,  ///< early levels cheap, later levels expensive (sqrt-like)
  kConvex,   ///< early levels expensive, later levels cheap increments
};

struct SyntheticSpec {
  ActionIndex num_actions = 100;
  int num_levels = 7;
  std::size_t num_cycles = 8;

  /// Per-action base Cav at qmin, drawn uniformly from [base_min, base_max].
  TimeNs base_min_ns = us(200);
  TimeNs base_max_ns = us(900);
  /// Cav(qmax) / Cav(qmin) ratio per action (same for all actions).
  double quality_span = 2.5;
  QualityCurve curve = QualityCurve::kLinear;
  /// Cwc(i, q) = Cav(i, q) * wc_factor.
  double wc_factor = 1.8;

  /// Actual time = Cav * load where load follows an AR(1) across actions
  /// with the given correlation, clamped to [load_min, load_max]; the
  /// clamp and wc_factor are chosen so actual <= Cwc always.
  double load_phi = 0.85;
  double load_sigma = 0.12;
  double load_min = 0.45;
  double load_max = 1.60;  ///< must be <= wc_factor

  /// Deadline placement: one final deadline equal to the sequence's total
  /// Cav at `budget_quality` scaled by `budget_factor`; additionally a
  /// milestone deadline every `milestone_every` actions when > 0.
  Quality budget_quality = 4;
  double budget_factor = 1.05;
  ActionIndex milestone_every = 0;

  std::uint64_t seed = 42;
};

/// Generated bundle.
class SyntheticWorkload {
 public:
  explicit SyntheticWorkload(const SyntheticSpec& spec);

  const SyntheticSpec& spec() const { return spec_; }
  const ScheduledApp& app() const { return app_; }
  const TimingModel& timing() const { return timing_; }
  TraceTimeSource& traces() { return traces_; }
  const TraceTimeSource& traces() const { return traces_; }
  TimeNs budget() const { return budget_; }

 private:
  static TimingModel build_timing(const SyntheticSpec& spec);
  static ScheduledApp build_app(const SyntheticSpec& spec, const TimingModel& tm,
                                TimeNs& budget_out);
  static TraceTimeSource build_traces(const SyntheticSpec& spec,
                                      const TimingModel& tm);

  SyntheticSpec spec_;
  TimingModel timing_;
  TimeNs budget_ = 0;
  ScheduledApp app_;
  TraceTimeSource traces_;
};

}  // namespace speedqm
