#include "workload/trace_io.hpp"

#include <fstream>
#include <stdexcept>

#include "support/contract.hpp"

namespace speedqm {

namespace {

constexpr std::uint32_t kTraceMagic = 0x53514D54;  // "SQMT"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  out.write(reinterpret_cast<const char*>(b), 4);
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (!in) throw std::runtime_error("trace_io: truncated stream");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

void write_i64(std::ostream& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>((u >> (8 * i)) & 0xFF);
  out.write(reinterpret_cast<const char*>(b), 8);
}

std::int64_t read_i64(std::istream& in) {
  unsigned char b[8];
  in.read(reinterpret_cast<char*>(b), 8);
  if (!in) throw std::runtime_error("trace_io: truncated stream");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return static_cast<std::int64_t>(v);
}

}  // namespace

void save_traces(const TraceTimeSource& traces, std::ostream& out) {
  write_u32(out, kTraceMagic);
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(traces.num_actions()));
  write_u32(out, static_cast<std::uint32_t>(traces.num_levels()));
  write_u32(out, static_cast<std::uint32_t>(traces.num_cycles()));
  for (std::size_t c = 0; c < traces.num_cycles(); ++c) {
    for (ActionIndex i = 0; i < traces.num_actions(); ++i) {
      for (Quality q = 0; q < traces.num_levels(); ++q) {
        write_i64(out, traces.at(c, i, q));
      }
    }
  }
  if (!out) throw std::runtime_error("trace_io: write failed");
}

TraceTimeSource load_traces(std::istream& in) {
  if (read_u32(in) != kTraceMagic)
    throw std::runtime_error("trace_io: bad magic");
  if (read_u32(in) != kVersion)
    throw std::runtime_error("trace_io: unsupported version");
  const auto n = static_cast<ActionIndex>(read_u32(in));
  const auto nq = static_cast<int>(read_u32(in));
  const auto cycles = static_cast<std::size_t>(read_u32(in));
  SPEEDQM_REQUIRE(n > 0 && nq > 0 && cycles > 0, "trace_io: corrupt header");

  std::vector<std::vector<TimeNs>> data;
  data.reserve(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    std::vector<TimeNs> cycle(n * static_cast<std::size_t>(nq));
    for (auto& v : cycle) v = read_i64(in);
    data.push_back(std::move(cycle));
  }
  return TraceTimeSource(n, nq, std::move(data));
}

TraceStreamReader::TraceStreamReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw std::runtime_error("trace_io: cannot open " + path);
  if (read_u32(in_) != kTraceMagic)
    throw std::runtime_error("trace_io: bad magic in " + path);
  if (read_u32(in_) != kVersion)
    throw std::runtime_error("trace_io: unsupported version in " + path);
  n_ = static_cast<ActionIndex>(read_u32(in_));
  nq_ = static_cast<int>(read_u32(in_));
  cycles_ = static_cast<std::size_t>(read_u32(in_));
  if (n_ <= 0 || nq_ <= 0 || cycles_ == 0)
    throw std::runtime_error("trace_io: corrupt header in " + path);
  data_start_ = in_.tellg();
}

bool TraceStreamReader::next_frame(std::vector<TimeNs>& frame) {
  if (read_ >= cycles_) return false;
  frame.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(nq_));
  for (TimeNs& v : frame) {
    try {
      v = read_i64(in_);
    } catch (const std::runtime_error&) {
      throw std::runtime_error("trace_io: " + path_ + " truncated in cycle " +
                               std::to_string(read_) + " (header promises " +
                               std::to_string(cycles_) + " cycles)");
    }
  }
  ++read_;
  return true;
}

void TraceStreamReader::rewind() {
  in_.clear();
  in_.seekg(data_start_);
  if (!in_) throw std::runtime_error("trace_io: rewind failed on " + path_);
  read_ = 0;
}

void save_traces_file(const TraceTimeSource& traces, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace_io: cannot open " + path);
  save_traces(traces, out);
}

TraceTimeSource load_traces_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  return load_traces(in);
}

}  // namespace speedqm
