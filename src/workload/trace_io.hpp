// Persistence for actual-execution-time traces.
//
// Workload traces are the repository's stand-in for the paper's captured
// encoder content; serializing them lets experiments pin down content
// exactly (regenerate once, replay everywhere) and lets external tools
// inject their own measured traces into the simulator.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/trace_source.hpp"

namespace speedqm {

/// Binary format (little-endian): magic, version, num_actions, num_levels,
/// num_cycles, then cycle-major i64 tables.
void save_traces(const TraceTimeSource& traces, std::ostream& out);
TraceTimeSource load_traces(std::istream& in);
void save_traces_file(const TraceTimeSource& traces, const std::string& path);
TraceTimeSource load_traces_file(const std::string& path);

/// Streaming reader over the same binary format: validates the header on
/// construction, then vends one cycle's [action][quality] table at a time
/// into a caller-owned buffer — resident memory stays O(one frame)
/// regardless of how many cycles the file records (the
/// TraceReplayGenerator's O(1)-memory contract). Truncation mid-frame
/// throws std::runtime_error naming the cycle.
class TraceStreamReader {
 public:
  explicit TraceStreamReader(const std::string& path);

  ActionIndex num_actions() const { return n_; }
  int num_levels() const { return nq_; }
  std::size_t num_cycles() const { return cycles_; }
  /// Cycles read since construction/rewind (== the next cycle index).
  std::size_t cycles_read() const { return read_; }

  /// Reads the next cycle into `frame` (resized to num_actions *
  /// num_levels). Returns false cleanly at end of stream; throws on a
  /// frame cut short.
  bool next_frame(std::vector<TimeNs>& frame);
  /// Repositions the stream at cycle 0.
  void rewind();

 private:
  std::ifstream in_;
  std::string path_;
  ActionIndex n_ = 0;
  int nq_ = 0;
  std::size_t cycles_ = 0;
  std::size_t read_ = 0;
  std::streampos data_start_;
};

}  // namespace speedqm
