// Persistence for actual-execution-time traces.
//
// Workload traces are the repository's stand-in for the paper's captured
// encoder content; serializing them lets experiments pin down content
// exactly (regenerate once, replay everywhere) and lets external tools
// inject their own measured traces into the simulator.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace_source.hpp"

namespace speedqm {

/// Binary format (little-endian): magic, version, num_actions, num_levels,
/// num_cycles, then cycle-major i64 tables.
void save_traces(const TraceTimeSource& traces, std::ostream& out);
TraceTimeSource load_traces(std::istream& in);
void save_traces_file(const TraceTimeSource& traces, const std::string& path);
TraceTimeSource load_traces_file(const std::string& path);

}  // namespace speedqm
