#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "support/contract.hpp"
#include "support/rng.hpp"

namespace speedqm {

namespace {

double curve_fraction(QualityCurve curve, double x) {
  switch (curve) {
    case QualityCurve::kLinear: return x;
    case QualityCurve::kConcave: return std::sqrt(x);
    case QualityCurve::kConvex: return x * x;
  }
  return x;
}

}  // namespace

TimingModel SyntheticWorkload::build_timing(const SyntheticSpec& spec) {
  SPEEDQM_REQUIRE(spec.num_actions > 0, "SyntheticSpec: num_actions must be > 0");
  SPEEDQM_REQUIRE(spec.num_levels > 0, "SyntheticSpec: num_levels must be > 0");
  SPEEDQM_REQUIRE(spec.quality_span >= 1.0, "SyntheticSpec: quality_span >= 1");
  SPEEDQM_REQUIRE(spec.wc_factor >= spec.load_max,
                  "SyntheticSpec: wc_factor must cover load_max");
  SPEEDQM_REQUIRE(spec.base_min_ns > 0 && spec.base_max_ns >= spec.base_min_ns,
                  "SyntheticSpec: bad base range");

  SplitMix64 seeder(spec.seed);
  Xoshiro256 base_rng(seeder.next());

  TimingModelBuilder tb(spec.num_levels);
  for (ActionIndex i = 0; i < spec.num_actions; ++i) {
    const double base = static_cast<double>(
        base_rng.uniform_int(spec.base_min_ns, spec.base_max_ns));
    std::vector<TimeNs> cav(static_cast<std::size_t>(spec.num_levels));
    std::vector<TimeNs> cwc(static_cast<std::size_t>(spec.num_levels));
    for (Quality q = 0; q < spec.num_levels; ++q) {
      const double x = spec.num_levels == 1
                           ? 0.0
                           : static_cast<double>(q) / (spec.num_levels - 1);
      const double factor =
          1.0 + (spec.quality_span - 1.0) * curve_fraction(spec.curve, x);
      const double c = base * factor;
      cav[static_cast<std::size_t>(q)] = static_cast<TimeNs>(std::llround(c));
      cwc[static_cast<std::size_t>(q)] =
          static_cast<TimeNs>(std::llround(c * spec.wc_factor));
    }
    tb.action(cav, cwc);
  }
  return std::move(tb).build();
}

ScheduledApp SyntheticWorkload::build_app(const SyntheticSpec& spec,
                                          const TimingModel& tm,
                                          TimeNs& budget_out) {
  SPEEDQM_REQUIRE(tm.valid_quality(spec.budget_quality),
                  "SyntheticSpec: budget_quality out of range");
  SPEEDQM_REQUIRE(spec.budget_factor > 0, "SyntheticSpec: budget_factor > 0");
  const double total =
      static_cast<double>(tm.total_cav(spec.budget_quality)) * spec.budget_factor;
  budget_out = static_cast<TimeNs>(std::llround(total));

  std::vector<std::string> names;
  std::vector<TimeNs> deadlines(spec.num_actions, kTimePlusInf);
  names.reserve(spec.num_actions);
  for (ActionIndex i = 0; i < spec.num_actions; ++i) {
    names.push_back("a" + std::to_string(i));
    if (spec.milestone_every > 0 && (i + 1) % spec.milestone_every == 0 &&
        i + 1 < spec.num_actions) {
      // Proportional milestone: the budget's fraction at this point.
      deadlines[i] = static_cast<TimeNs>(std::llround(
          total * static_cast<double>(i + 1) / static_cast<double>(spec.num_actions)));
    }
  }
  deadlines.back() = budget_out;
  return ScheduledApp(std::move(names), std::move(deadlines));
}

TraceTimeSource SyntheticWorkload::build_traces(const SyntheticSpec& spec,
                                                const TimingModel& tm) {
  SPEEDQM_REQUIRE(spec.num_cycles > 0, "SyntheticSpec: num_cycles must be > 0");
  SPEEDQM_REQUIRE(spec.load_min >= 0 && spec.load_min <= spec.load_max,
                  "SyntheticSpec: bad load range");

  SplitMix64 seeder(spec.seed + 0x9E3779B9ULL);
  const auto nq = static_cast<std::size_t>(spec.num_levels);

  std::vector<std::vector<TimeNs>> data;
  data.reserve(spec.num_cycles);
  std::size_t clamped = 0, total = 0;

  for (std::size_t c = 0; c < spec.num_cycles; ++c) {
    Ar1Process load(1.0, spec.load_phi, spec.load_sigma, seeder.next());
    std::vector<TimeNs> cycle(spec.num_actions * nq);
    for (ActionIndex i = 0; i < spec.num_actions; ++i) {
      const double l = std::clamp(load.next(), spec.load_min, spec.load_max);
      for (Quality q = 0; q < spec.num_levels; ++q) {
        TimeNs v = static_cast<TimeNs>(
            std::llround(static_cast<double>(tm.cav(i, q)) * l));
        ++total;
        if (v > tm.cwc(i, q)) {
          v = tm.cwc(i, q);
          ++clamped;
        }
        if (v < 0) v = 0;
        cycle[i * nq + static_cast<std::size_t>(q)] = v;
      }
    }
    data.push_back(std::move(cycle));
  }

  TraceTimeSource source(spec.num_actions, spec.num_levels, std::move(data));
  source.set_clamp_fraction(
      total ? static_cast<double>(clamped) / static_cast<double>(total) : 0.0);
  return source;
}

SyntheticWorkload::SyntheticWorkload(const SyntheticSpec& spec)
    : spec_(spec),
      timing_(build_timing(spec)),
      app_(build_app(spec, timing_, budget_)),
      traces_(build_traces(spec, timing_)) {}

}  // namespace speedqm
