// Canned experiment scenarios, most importantly the paper's exact
// evaluation configuration (section 4.1): MPEG encoder, 1,189 actions,
// 7 quality levels, 29 frames of 396 macroblocks, a single global deadline
// D = 30 s, rho = {1, 10, 20, 30, 40, 50}, on an iPod-like platform.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/multi_task.hpp"
#include "core/policy.hpp"
#include "sim/overhead_inflation.hpp"
#include "sim/overhead_model.hpp"
#include "sim/perturb.hpp"
#include "workload/mpeg_model.hpp"
#include "workload/synthetic.hpp"

namespace speedqm {

/// Which Quality Manager implementation a controller model targets.
enum class ManagerFlavor {
  kNumeric,             ///< paper's numeric manager (downward scan)
  kNumericIncremental,  ///< numeric manager over incremental tD maintenance
  kRegions,
  kRelaxation,
  kBatch,               ///< batched multi-task engine (core/batch_engine.hpp)
};

const char* to_string(ManagerFlavor flavor);

/// The paper's evaluation setup, bundled.
struct PaperScenario {
  MpegConfig config;
  TimeNs total_deadline = 0;   ///< the paper's D = 30 s
  TimeNs frame_period = 0;     ///< D / num_frames (milestone spacing)
  std::vector<int> rho;        ///< relaxation step set
  OverheadModel overhead;      ///< iPod-like calibration
  std::unique_ptr<MpegWorkload> workload;

  const ScheduledApp& app() const { return workload->app(); }
  const TimingModel& timing() const { return workload->timing(); }
  TraceTimeSource& traces() { return workload->traces(); }

  /// The timing model a deployed controller of the given flavor should
  /// decide with: the workload's model inflated by that manager's own
  /// estimated call cost on this platform (the paper's §2.2.2 remark about
  /// overestimating execution times to cover quality-management overhead).
  TimingModel controller_model(ManagerFlavor flavor) const;
};

/// Builds the scenario. `seed` varies content; the default reproduces the
/// repository's reference outputs.
PaperScenario make_paper_scenario(std::uint64_t seed = 20070326);

// ---------------------------------------------------------------------------
// Heterogeneous multi-task mixes: T concurrent applications (optionally a
// scaled-down MPEG encoder plus synthetic tasks of varied size, cost and
// quality curve) sharing one cycle budget under a batched or sequential
// multi-task manager — the serving workload for bench_multi_task and the
// batched-vs-sequential differential tests. T ∈ {2, 8, 32} are the
// benched points; any T >= 1 works.
// ---------------------------------------------------------------------------

struct MultiTaskMixSpec {
  std::size_t num_tasks = 8;
  std::uint64_t seed = 20070730;
  bool include_mpeg = true;     ///< task 0 is a scaled-down MPEG encoder
  int num_levels = 7;           ///< shared quality axis (all tasks)
  std::size_t num_cycles = 16;  ///< cycles of trace content per task
  /// Synthetic task sizes are drawn from [min_task_actions, max_task_actions].
  ActionIndex min_task_actions = 8;
  ActionIndex max_task_actions = 48;
  /// Shared budget = budget_factor * sum over tasks of total Cav at
  /// budget_quality; every task's last action is due by it.
  Quality budget_quality = 4;
  double budget_factor = 1.10;
  /// Inflate each task's controller model for the batch manager's own call
  /// cost (the paper's §2.2.2 margin), on the server-like platform.
  bool inflate_overhead = true;
  /// Add the coexistence margin to each task's controller model: under the
  /// proportional interleave, between two of a task's actions the other
  /// tasks execute ~one round of theirs, so each action's Cav/Cwc is
  /// raised by the others' per-round average cost at the same quality
  /// (§2.2.2 overestimation applied to co-scheduling). Without it every
  /// task budgets as if it owned the whole cycle and the mix overcommits.
  bool coexistence_margin = true;
};

/// The raw per-task materials of a serving mix, built once from a spec and
/// shareable between assemblies (a full MultiTaskMix, the per-shard mixes
/// of serve/ShardedServer, and admission-control what-if evaluations all
/// draw from one pool). Construction is deterministic in the spec alone:
/// task `i` of two pools built from equal specs is identical, regardless
/// of which subsets are later assembled.
///
/// Thread-safety: everything here is immutable after construction EXCEPT
/// the per-task trace sources, whose set_cycle/actual_time carry a cursor.
/// Concurrent use from multiple shards is safe iff every task belongs to
/// at most one shard at a time (ShardedServer's invariant).
class TaskPool {
 public:
  explicit TaskPool(const MultiTaskMixSpec& spec);

  const MultiTaskMixSpec& spec() const { return spec_; }
  std::size_t size() const { return names_.size(); }
  const std::string& name(std::size_t task) const { return names_.at(task); }
  /// The task's raw schedule (original per-task deadlines, pre-budget).
  const ScheduledApp& raw_app(std::size_t task) const {
    return *apps_.at(task);
  }
  /// The task's raw timing model (uninflated).
  const TimingModel& raw_timing(std::size_t task) const {
    return *timings_.at(task);
  }
  CyclicTimeSource& trace(std::size_t task) const { return *traces_.at(task); }

  /// The shared cycle budget of a member subset: budget_factor times the
  /// members' total Cav at budget_quality — exactly the arithmetic
  /// MultiTaskMix(spec) uses for the full pool, so an all-members call
  /// reproduces its budget bit for bit.
  TimeNs budget_for(const std::vector<std::size_t>& members) const;

 private:
  MultiTaskMixSpec spec_;
  std::unique_ptr<MpegWorkload> mpeg_;
  std::vector<std::unique_ptr<SyntheticWorkload>> synth_;
  std::vector<const ScheduledApp*> apps_;
  std::vector<const TimingModel*> timings_;
  std::vector<CyclicTimeSource*> traces_;
  std::vector<std::string> names_;
};

/// The controller-side view of one member subset of a pool: budget-bearing
/// apps (every member due by the shared budget), controller timing models
/// (coexistence margin over the members, then §2.2.2 overhead inflation)
/// and per-task policy engines. This is the part admission control needs
/// to evaluate a hypothetical placement — building it does NOT compose the
/// schedules or touch the trace cursors.
struct MemberControllers {
  std::vector<std::size_t> members;                  ///< pool task ids
  std::vector<std::unique_ptr<ScheduledApp>> apps;   ///< budget-bearing
  std::vector<std::unique_ptr<TimingModel>> models;  ///< controller models
  std::vector<std::unique_ptr<PolicyEngine>> engines;

  std::vector<const PolicyEngine*> engine_ptrs() const;
};

/// Builds the member controllers for `members` (pool task ids, in the
/// order they will compose) against a fixed shared `budget`.
MemberControllers build_member_controllers(const TaskPool& pool,
                                           const std::vector<std::size_t>& members,
                                           TimeNs budget,
                                           const OverheadModel& overhead);

/// Owning bundle: per-task workloads, budget-bearing apps, per-task policy
/// engines (over §2.2.2-inflated controller models), the proportional
/// interleave composition, and a cyclic composed trace source.
class MultiTaskMix {
 public:
  explicit MultiTaskMix(const MultiTaskMixSpec& spec);

  /// Assembles a mix over a member subset of a shared pool. `budget`
  /// fixes the shared cycle budget (a shard's capacity); 0 means "compute
  /// from the members" (the single-mix default). With all members and
  /// budget 0 this is bit-identical to MultiTaskMix(pool->spec()).
  MultiTaskMix(std::shared_ptr<TaskPool> pool, std::vector<std::size_t> members,
               TimeNs budget = 0);

  const MultiTaskMixSpec& spec() const { return pool_->spec(); }
  const TaskPool& pool() const { return *pool_; }
  /// Pool task ids of the members, in composition order.
  const std::vector<std::size_t>& members() const { return controllers_.members; }
  std::size_t num_tasks() const { return controllers_.engines.size(); }
  const ComposedSystem& composed() const { return *composed_; }
  ComposedCyclicSource& source() { return *source_; }
  TimeNs budget() const { return budget_; }
  const OverheadModel& overhead() const { return overhead_; }

  /// Borrowed per-task engines for BatchMultiTaskManager /
  /// SequentialMultiTaskManager (valid for the mix's lifetime).
  std::vector<const PolicyEngine*> engines() const;

  /// Executor options preset: period = shared budget, server-like platform.
  ExecutorOptions executor_options(std::size_t cycles) const;

 private:
  std::shared_ptr<TaskPool> pool_;
  OverheadModel overhead_;
  MemberControllers controllers_;
  std::unique_ptr<ComposedSystem> composed_;
  std::unique_ptr<ComposedCyclicSource> source_;
  TimeNs budget_ = 0;
};

// ---------------------------------------------------------------------------
// Perturbation catalogue: named, seeded fault scripts (sim/perturb.hpp)
// sized to a serving horizon. Same name + cycles + seed => the same
// scenario, and the perturbation engine guarantees the same scenario +
// seed => identical run artifacts — so a catalogue name is a complete,
// reproducible description of a stress experiment (the CLI's --perturb).
// ---------------------------------------------------------------------------

/// Valid catalogue names, in presentation order: "calm" (empty script),
/// "spike" (the canonical load-spike pair the degradation gate uses),
/// "jitter", "stall", "overhead-storm", "flaky-shard", "disconnect",
/// "storm" (everything at once).
const std::vector<std::string>& perturbation_scenario_names();

/// Builds the named scenario scaled to a `cycles`-long horizon. Throws
/// contract_error (listing the valid names) for an unknown name; requires
/// cycles >= 8 so the windows have room.
PerturbationScenario make_perturbation_scenario(const std::string& name,
                                                std::size_t cycles,
                                                std::uint64_t seed = 20070615);

/// Paper constants, exposed for tests/benches.
inline constexpr int kPaperActions = 1189;
inline constexpr int kPaperLevels = 7;
inline constexpr int kPaperFrames = 29;
inline constexpr int kPaperMacroblocks = 396;
inline constexpr int kPaperRegionIntegers = 8323;        // |A| * |Q|
inline constexpr int kPaperRelaxationIntegers = 99876;   // 2 |A| |Q| |rho|

}  // namespace speedqm
