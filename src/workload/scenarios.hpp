// Canned experiment scenarios, most importantly the paper's exact
// evaluation configuration (section 4.1): MPEG encoder, 1,189 actions,
// 7 quality levels, 29 frames of 396 macroblocks, a single global deadline
// D = 30 s, rho = {1, 10, 20, 30, 40, 50}, on an iPod-like platform.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/overhead_inflation.hpp"
#include "sim/overhead_model.hpp"
#include "workload/mpeg_model.hpp"

namespace speedqm {

/// Which Quality Manager implementation a controller model targets.
enum class ManagerFlavor {
  kNumeric,             ///< paper's numeric manager (downward scan)
  kNumericIncremental,  ///< numeric manager over incremental tD maintenance
  kRegions,
  kRelaxation,
};

const char* to_string(ManagerFlavor flavor);

/// The paper's evaluation setup, bundled.
struct PaperScenario {
  MpegConfig config;
  TimeNs total_deadline = 0;   ///< the paper's D = 30 s
  TimeNs frame_period = 0;     ///< D / num_frames (milestone spacing)
  std::vector<int> rho;        ///< relaxation step set
  OverheadModel overhead;      ///< iPod-like calibration
  std::unique_ptr<MpegWorkload> workload;

  const ScheduledApp& app() const { return workload->app(); }
  const TimingModel& timing() const { return workload->timing(); }
  TraceTimeSource& traces() { return workload->traces(); }

  /// The timing model a deployed controller of the given flavor should
  /// decide with: the workload's model inflated by that manager's own
  /// estimated call cost on this platform (the paper's §2.2.2 remark about
  /// overestimating execution times to cover quality-management overhead).
  TimingModel controller_model(ManagerFlavor flavor) const;
};

/// Builds the scenario. `seed` varies content; the default reproduces the
/// repository's reference outputs.
PaperScenario make_paper_scenario(std::uint64_t seed = 20070326);

/// Paper constants, exposed for tests/benches.
inline constexpr int kPaperActions = 1189;
inline constexpr int kPaperLevels = 7;
inline constexpr int kPaperFrames = 29;
inline constexpr int kPaperMacroblocks = 396;
inline constexpr int kPaperRegionIntegers = 8323;        // |A| * |Q|
inline constexpr int kPaperRelaxationIntegers = 99876;   // 2 |A| |Q| |rho|

}  // namespace speedqm
