// Simulated profiling: estimating Cav and Cwc from training runs.
//
// The paper obtains its timing functions "by profiling" on the target
// (section 4.1). This component mirrors that methodology: it observes a
// trace source over a set of training cycles and produces a TimingModel
// with Cav = per-action mean and Cwc = per-action observed maximum times a
// safety factor. Because profiled bounds are estimates, the resulting
// model may be violated by unseen content — tests use this to exercise the
// controller both inside and outside the C <= Cwc contract.
#pragma once

#include <cstddef>

#include "core/timing_model.hpp"
#include "workload/trace_source.hpp"

namespace speedqm {

struct ProfilerOptions {
  /// Training cycles: [first_cycle, first_cycle + cycles).
  std::size_t first_cycle = 0;
  std::size_t cycles = 4;
  /// Cwc = observed max * safety_factor (>= 1).
  double safety_factor = 1.25;
};

/// Builds a TimingModel from observed traces. Monotonicity in quality is
/// enforced by a running-maximum pass (profiling noise can otherwise
/// produce tiny inversions).
TimingModel profile_timing(const TraceTimeSource& traces,
                           const ProfilerOptions& opts);

}  // namespace speedqm
