#include "workload/trace_source.hpp"

#include <algorithm>
#include <numeric>

#include "support/contract.hpp"

namespace speedqm {

TraceTimeSource::TraceTimeSource(ActionIndex num_actions, int num_levels,
                                 std::vector<std::vector<TimeNs>> data)
    : n_(num_actions), nq_(num_levels), data_(std::move(data)) {
  SPEEDQM_REQUIRE(n_ > 0 && nq_ > 0, "TraceTimeSource: empty dimensions");
  SPEEDQM_REQUIRE(!data_.empty(), "TraceTimeSource: no cycles");
  const std::size_t expected = n_ * static_cast<std::size_t>(nq_);
  for (const auto& cycle : data_) {
    SPEEDQM_REQUIRE(cycle.size() == expected, "TraceTimeSource: cycle size mismatch");
  }
}

void TraceTimeSource::set_cycle(std::size_t cycle) {
  SPEEDQM_REQUIRE(cycle < data_.size(), "TraceTimeSource: cycle out of range");
  current_cycle_ = cycle;
}

TimeNs TraceTimeSource::actual_time(ActionIndex i, Quality q) {
  return at(current_cycle_, i, q);
}

TimeNs TraceTimeSource::at(std::size_t cycle, ActionIndex i, Quality q) const {
  SPEEDQM_REQUIRE(cycle < data_.size(), "TraceTimeSource: cycle out of range");
  SPEEDQM_REQUIRE(i < n_, "TraceTimeSource: action out of range");
  SPEEDQM_REQUIRE(q >= 0 && q < nq_, "TraceTimeSource: quality out of range");
  return data_[cycle][i * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q)];
}

ComposedCyclicSource::ComposedCyclicSource(const ComposedSystem& system,
                                           std::vector<CyclicTimeSource*> sources)
    : system_(&system), sources_(std::move(sources)) {
  SPEEDQM_REQUIRE(sources_.size() == system.num_tasks(),
                  "ComposedCyclicSource: one source per task required");
  // Joint content period, computed once (the executor queries it every
  // cycle): the LCM of per-task trace lengths — anything shorter would
  // replay shorter tasks' content non-uniformly under the executor's
  // pre-mod (a double mod by incommensurate lengths).
  constexpr std::size_t kCap = std::size_t{1} << 20;
  std::size_t cycles = 1;
  std::size_t longest = 1;
  bool capped = false;
  for (const auto* s : sources_) {
    SPEEDQM_REQUIRE(s != nullptr && s->num_cycles() >= 1,
                    "ComposedCyclicSource: null or empty source");
    const std::size_t n = s->num_cycles();
    longest = std::max(longest, n);
    if (!capped) {
      const std::size_t reduced = cycles / std::gcd(cycles, n);
      if (reduced > kCap / n) {
        capped = true;
      } else {
        cycles = reduced * n;
      }
    }
  }
  num_cycles_ = capped ? longest : cycles;
}

void ComposedCyclicSource::set_cycle(std::size_t cycle) {
  for (auto* s : sources_) s->set_cycle(cycle % s->num_cycles());
}

std::size_t ComposedCyclicSource::num_cycles() const { return num_cycles_; }

TimeNs ComposedCyclicSource::actual_time(ActionIndex i, Quality q) {
  const TaskRef& ref = system_->origin(i);
  return sources_[ref.task]->actual_time(ref.local_action, q);
}

std::size_t TraceTimeSource::count_contract_violations(const TimingModel& tm) const {
  SPEEDQM_REQUIRE(tm.num_actions() == n_ && tm.num_levels() == nq_,
                  "count_contract_violations: model shape mismatch");
  std::size_t violations = 0;
  for (std::size_t c = 0; c < data_.size(); ++c) {
    for (ActionIndex i = 0; i < n_; ++i) {
      for (Quality q = 0; q < nq_; ++q) {
        const TimeNs v = at(c, i, q);
        if (v < 0 || v > tm.cwc(i, q)) ++violations;
        if (q > 0 && v < at(c, i, q - 1)) ++violations;
      }
    }
  }
  return violations;
}

}  // namespace speedqm
