#include "workload/trace_source.hpp"

#include "support/contract.hpp"

namespace speedqm {

TraceTimeSource::TraceTimeSource(ActionIndex num_actions, int num_levels,
                                 std::vector<std::vector<TimeNs>> data)
    : n_(num_actions), nq_(num_levels), data_(std::move(data)) {
  SPEEDQM_REQUIRE(n_ > 0 && nq_ > 0, "TraceTimeSource: empty dimensions");
  SPEEDQM_REQUIRE(!data_.empty(), "TraceTimeSource: no cycles");
  const std::size_t expected = n_ * static_cast<std::size_t>(nq_);
  for (const auto& cycle : data_) {
    SPEEDQM_REQUIRE(cycle.size() == expected, "TraceTimeSource: cycle size mismatch");
  }
}

void TraceTimeSource::set_cycle(std::size_t cycle) {
  SPEEDQM_REQUIRE(cycle < data_.size(), "TraceTimeSource: cycle out of range");
  current_cycle_ = cycle;
}

TimeNs TraceTimeSource::actual_time(ActionIndex i, Quality q) {
  return at(current_cycle_, i, q);
}

TimeNs TraceTimeSource::at(std::size_t cycle, ActionIndex i, Quality q) const {
  SPEEDQM_REQUIRE(cycle < data_.size(), "TraceTimeSource: cycle out of range");
  SPEEDQM_REQUIRE(i < n_, "TraceTimeSource: action out of range");
  SPEEDQM_REQUIRE(q >= 0 && q < nq_, "TraceTimeSource: quality out of range");
  return data_[cycle][i * static_cast<std::size_t>(nq_) + static_cast<std::size_t>(q)];
}

std::size_t TraceTimeSource::count_contract_violations(const TimingModel& tm) const {
  SPEEDQM_REQUIRE(tm.num_actions() == n_ && tm.num_levels() == nq_,
                  "count_contract_violations: model shape mismatch");
  std::size_t violations = 0;
  for (std::size_t c = 0; c < data_.size(); ++c) {
    for (ActionIndex i = 0; i < n_; ++i) {
      for (Quality q = 0; q < nq_; ++q) {
        const TimeNs v = at(c, i, q);
        if (v < 0 || v > tm.cwc(i, q)) ++violations;
        if (q > 0 && v < at(c, i, q - 1)) ++violations;
      }
    }
  }
  return violations;
}

}  // namespace speedqm
