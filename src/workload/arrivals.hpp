// Dynamic arrival scenarios: tasks joining and leaving a serving mix
// mid-run.
//
// A serving deployment never sees a fixed task set: streams attach, run
// for a while and detach. An ArrivalSchedule is the deterministic event
// script of one such scenario — "at cycle c, pool task X asks to join" /
// "at cycle c, pool task X leaves" — consumed by serve/ShardedServer at
// segment boundaries (events only ever fire between cycles; a cycle is
// never reconfigured mid-flight). Joins are *requests*: the admission
// controller may reject them, and the schedule generator deliberately
// oversubscribes so rejection paths are exercised.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace speedqm {

struct ArrivalEvent {
  std::size_t cycle = 0;  ///< fires before this cycle starts
  std::size_t task = 0;   ///< TaskPool task id
  bool join = true;       ///< false = leave
};

/// A validated event script: events sorted by cycle (stable within a
/// cycle), every join targeting an absent task and every leave a present
/// one, given `initial_tasks` tasks present at cycle 0.
class ArrivalSchedule {
 public:
  ArrivalSchedule() = default;
  /// Validates the invariants above; throws contract_error on violation.
  ArrivalSchedule(std::vector<ArrivalEvent> events, std::size_t pool_tasks,
                  std::size_t initial_tasks);

  const std::vector<ArrivalEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Distinct event cycles, ascending — the segment boundaries a serving
  /// run splits at.
  std::vector<std::size_t> boundaries() const;
  /// All events firing before the given cycle starts, in script order.
  std::vector<ArrivalEvent> events_at(std::size_t cycle) const;

  std::string describe() const;

 private:
  std::vector<ArrivalEvent> events_;
};

/// Generates a deterministic churn scenario: pool tasks `initial_tasks..`
/// join at spread-out cycles, and some initially-present tasks leave and
/// possibly rejoin later. `churn_events` caps the total event count;
/// events land strictly inside (0, cycles) so every serving run has a
/// non-empty first and last segment.
ArrivalSchedule make_arrival_schedule(std::size_t pool_tasks,
                                      std::size_t initial_tasks,
                                      std::size_t cycles,
                                      std::size_t churn_events,
                                      std::uint64_t seed);

/// Merges externally forced events (e.g. a perturbation scenario's
/// disconnect windows: leave at the window start, rejoin at its end) into
/// an existing schedule. The combined script is re-sorted by cycle and
/// any event that is invalid under the merged order (join of a present
/// task, leave of an absent one) is dropped — the same tolerant policy
/// make_arrival_schedule applies to its own churn — so forcing a
/// disconnect of a task that already left degenerates to a no-op instead
/// of throwing.
ArrivalSchedule merge_forced_events(const ArrivalSchedule& base,
                                    std::vector<ArrivalEvent> forced,
                                    std::size_t pool_tasks,
                                    std::size_t initial_tasks);

}  // namespace speedqm
