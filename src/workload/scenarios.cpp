#include "workload/scenarios.hpp"

#include "support/contract.hpp"

namespace speedqm {

const char* to_string(ManagerFlavor flavor) {
  switch (flavor) {
    case ManagerFlavor::kNumeric: return "numeric";
    case ManagerFlavor::kNumericIncremental: return "numeric-incremental";
    case ManagerFlavor::kRegions: return "regions";
    case ManagerFlavor::kRelaxation: return "relaxation";
  }
  return "?";
}

TimingModel PaperScenario::controller_model(ManagerFlavor flavor) const {
  const TimingModel& tm = workload->timing();
  switch (flavor) {
    case ManagerFlavor::kNumeric: {
      const NumericCallEstimate est(tm.num_actions());
      return inflate_for_overhead(tm, overhead, est);
    }
    case ManagerFlavor::kNumericIncremental: {
      const IncrementalCallEstimate est(tm.num_levels());
      return inflate_for_overhead(tm, overhead, est);
    }
    case ManagerFlavor::kRegions: {
      const RegionCallEstimate est(tm.num_levels());
      return inflate_for_overhead(tm, overhead, est);
    }
    case ManagerFlavor::kRelaxation: {
      const RelaxationCallEstimate est(tm.num_levels(), rho.size());
      return inflate_for_overhead(tm, overhead, est);
    }
  }
  SPEEDQM_UNREACHABLE("unreachable manager flavor");
}

PaperScenario make_paper_scenario(std::uint64_t seed) {
  PaperScenario s;
  s.config = MpegConfig{};
  s.config.seed = seed;
  s.total_deadline = sec(30);
  s.frame_period = s.total_deadline / s.config.num_frames;
  s.rho = {1, 10, 20, 30, 40, 50};
  s.overhead = OverheadModel::ipod_like();
  s.workload = std::make_unique<MpegWorkload>(s.config, s.frame_period);

  SPEEDQM_ASSERT(s.workload->app().size() == kPaperActions,
                 "paper scenario: action count drifted from 1189");
  SPEEDQM_ASSERT(s.workload->timing().num_levels() == kPaperLevels,
                 "paper scenario: quality level count drifted from 7");
  return s;
}

}  // namespace speedqm
