#include "workload/scenarios.hpp"

#include <algorithm>
#include <string>

#include "sim/platform.hpp"
#include "support/contract.hpp"

namespace speedqm {

const char* to_string(ManagerFlavor flavor) {
  switch (flavor) {
    case ManagerFlavor::kNumeric: return "numeric";
    case ManagerFlavor::kNumericIncremental: return "numeric-incremental";
    case ManagerFlavor::kRegions: return "regions";
    case ManagerFlavor::kRelaxation: return "relaxation";
    case ManagerFlavor::kBatch: return "batch";
  }
  return "?";
}

TimingModel PaperScenario::controller_model(ManagerFlavor flavor) const {
  const TimingModel& tm = workload->timing();
  switch (flavor) {
    case ManagerFlavor::kNumeric: {
      const NumericCallEstimate est(tm.num_actions());
      return inflate_for_overhead(tm, overhead, est);
    }
    case ManagerFlavor::kNumericIncremental: {
      const IncrementalCallEstimate est(tm.num_levels());
      return inflate_for_overhead(tm, overhead, est);
    }
    case ManagerFlavor::kRegions: {
      const RegionCallEstimate est(tm.num_levels());
      return inflate_for_overhead(tm, overhead, est);
    }
    case ManagerFlavor::kRelaxation: {
      const RelaxationCallEstimate est(tm.num_levels(), rho.size());
      return inflate_for_overhead(tm, overhead, est);
    }
    case ManagerFlavor::kBatch: {
      const BatchCallEstimate est(tm.num_levels());
      return inflate_for_overhead(tm, overhead, est);
    }
  }
  SPEEDQM_UNREACHABLE("unreachable manager flavor");
}

namespace {

/// SplitMix64 step — cheap deterministic per-task parameter variation.
std::uint64_t mix_hash(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Coexistence margin: raises every action's Cav and Cwc of task `task` by
/// the other tasks' per-round average cost at the same quality. Under the
/// proportional interleave each task contributes one action per round, so
/// between two of τ's actions the platform executes ≈ n_σ / n_τ actions of
/// every other task σ — a per-action margin of Σ_{σ≠τ} total_cav_σ(q) / n_τ
/// (assuming coupled quality, like the composed single-knob manager).
/// Preserves the Definition 1 shape: the margin is non-decreasing in q and
/// added to Cav and Cwc alike.
TimingModel inflate_for_coexistence(const TimingModel& own, std::size_t task,
                                    const std::vector<const TimingModel*>& all) {
  const ActionIndex n = own.num_actions();
  const int nq = own.num_levels();
  const auto nq_s = static_cast<std::size_t>(nq);
  std::vector<TimeNs> margin(nq_s, 0);
  for (Quality q = 0; q < nq; ++q) {
    double others = 0;
    for (std::size_t other = 0; other < all.size(); ++other) {
      if (other == task) continue;
      others += static_cast<double>(all[other]->total_cav(q));
    }
    margin[static_cast<std::size_t>(q)] =
        static_cast<TimeNs>(others / static_cast<double>(n) + 0.5);
  }
  std::vector<TimeNs> cav(n * nq_s);
  std::vector<TimeNs> cwc(n * nq_s);
  for (ActionIndex i = 0; i < n; ++i) {
    for (Quality q = 0; q < nq; ++q) {
      const std::size_t k = i * nq_s + static_cast<std::size_t>(q);
      cav[k] = own.cav(i, q) + margin[static_cast<std::size_t>(q)];
      cwc[k] = own.cwc(i, q) + margin[static_cast<std::size_t>(q)];
    }
  }
  return TimingModel(n, nq, std::move(cav), std::move(cwc));
}

/// Rebuilds an app with every deadline cleared except the final one, set
/// to the shared budget: tasks sharing one cycle are all due by its end.
std::unique_ptr<ScheduledApp> with_shared_budget(const ScheduledApp& app,
                                                 TimeNs budget) {
  std::vector<std::string> names;
  std::vector<TimeNs> deadlines(app.size(), kTimePlusInf);
  names.reserve(app.size());
  for (ActionIndex i = 0; i < app.size(); ++i) names.push_back(app.name(i));
  deadlines.back() = budget;
  return std::make_unique<ScheduledApp>(std::move(names), std::move(deadlines));
}

}  // namespace

TaskPool::TaskPool(const MultiTaskMixSpec& spec) : spec_(spec) {
  SPEEDQM_REQUIRE(spec.num_tasks >= 1, "TaskPool: need at least one task");
  SPEEDQM_REQUIRE(spec.num_levels >= 2, "TaskPool: need >= 2 quality levels");
  SPEEDQM_REQUIRE(spec.min_task_actions >= 2 &&
                      spec.min_task_actions <= spec.max_task_actions,
                  "TaskPool: bad task size range");
  const Quality budget_q =
      std::min<Quality>(spec.budget_quality, spec.num_levels - 1);

  // Per-task raw workloads: optionally a scaled-down MPEG encoder (real
  // GOP/scene-change dynamics) plus heterogeneous synthetic tasks.
  std::uint64_t rng = spec.seed;

  std::size_t first_synth = 0;
  if (spec.include_mpeg) {
    MpegConfig config;
    config.mb_columns = 3;
    config.mb_rows = 2;
    config.num_frames = static_cast<int>(spec.num_cycles);
    config.num_levels = spec.num_levels;
    config.seed = spec.seed;
    // Provisional per-frame budget; every assembly re-deadlines the app
    // with its shared cycle budget.
    mpeg_ = std::make_unique<MpegWorkload>(config, sec(1));
    apps_.push_back(&mpeg_->app());
    timings_.push_back(&mpeg_->timing());
    traces_.push_back(&mpeg_->traces());
    names_.push_back("mpeg");
    first_synth = 1;
  }
  static const QualityCurve kCurves[] = {
      QualityCurve::kLinear, QualityCurve::kConcave, QualityCurve::kConvex};
  for (std::size_t task = first_synth; task < spec.num_tasks; ++task) {
    SyntheticSpec s;
    const ActionIndex span = spec.max_task_actions - spec.min_task_actions + 1;
    s.num_actions = spec.min_task_actions +
                    static_cast<ActionIndex>(mix_hash(rng) % span);
    s.num_levels = spec.num_levels;
    s.num_cycles = spec.num_cycles;
    s.base_min_ns = us(20 + mix_hash(rng) % 200);
    s.base_max_ns = s.base_min_ns * (2 + static_cast<TimeNs>(mix_hash(rng) % 3));
    s.quality_span = 2.0 + 0.1 * static_cast<double>(mix_hash(rng) % 10);
    s.curve = kCurves[task % 3];
    s.budget_quality = budget_q;
    s.seed = spec.seed * 1000003ULL + task;
    synth_.push_back(std::make_unique<SyntheticWorkload>(s));
    apps_.push_back(&synth_.back()->app());
    timings_.push_back(&synth_.back()->timing());
    traces_.push_back(&synth_.back()->traces());
    names_.push_back("synth" + std::to_string(task));
  }
}

TimeNs TaskPool::budget_for(const std::vector<std::size_t>& members) const {
  const Quality budget_q =
      std::min<Quality>(spec_.budget_quality, spec_.num_levels - 1);
  // Shared cycle budget over the members' average-cost volume (same
  // arithmetic, in member order, as the historical all-tasks computation).
  double total_cav = 0;
  for (const std::size_t task : members) {
    total_cav += static_cast<double>(raw_timing(task).total_cav(budget_q));
  }
  return static_cast<TimeNs>(total_cav * spec_.budget_factor);
}

std::vector<const PolicyEngine*> MemberControllers::engine_ptrs() const {
  std::vector<const PolicyEngine*> out;
  out.reserve(engines.size());
  for (const auto& e : engines) out.push_back(e.get());
  return out;
}

MemberControllers build_member_controllers(
    const TaskPool& pool, const std::vector<std::size_t>& members,
    TimeNs budget, const OverheadModel& overhead) {
  SPEEDQM_REQUIRE(!members.empty(),
                  "build_member_controllers: need at least one member");
  SPEEDQM_REQUIRE(budget > 0, "build_member_controllers: non-positive budget");
  const MultiTaskMixSpec& spec = pool.spec();

  MemberControllers out;
  out.members = members;
  std::vector<const TimingModel*> member_timings;
  member_timings.reserve(members.size());
  for (const std::size_t task : members) {
    SPEEDQM_REQUIRE(task < pool.size(),
                    "build_member_controllers: member out of range");
    member_timings.push_back(&pool.raw_timing(task));
  }

  // Controller views: budget-bearing apps and (optionally) §2.2.2-inflated
  // timing models; engines decide per task against the shared clock.
  const BatchCallEstimate estimate(spec.num_levels);
  for (std::size_t slot = 0; slot < members.size(); ++slot) {
    const std::size_t task = members[slot];
    out.apps.push_back(with_shared_budget(pool.raw_app(task), budget));
    TimingModel model =
        spec.coexistence_margin
            ? inflate_for_coexistence(*member_timings[slot], slot,
                                      member_timings)
            : *member_timings[slot];
    if (spec.inflate_overhead) {
      model = inflate_for_overhead(model, overhead, estimate);
    }
    out.models.push_back(std::make_unique<TimingModel>(std::move(model)));
    out.engines.push_back(std::make_unique<PolicyEngine>(
        *out.apps.back(), *out.models.back(), PolicyKind::kMixed));
  }
  return out;
}

namespace {

std::vector<std::size_t> all_members(std::size_t count) {
  std::vector<std::size_t> members(count);
  for (std::size_t i = 0; i < count; ++i) members[i] = i;
  return members;
}

}  // namespace

MultiTaskMix::MultiTaskMix(const MultiTaskMixSpec& spec)
    : MultiTaskMix(std::make_shared<TaskPool>(spec),
                   all_members(spec.num_tasks)) {}

MultiTaskMix::MultiTaskMix(std::shared_ptr<TaskPool> pool,
                           std::vector<std::size_t> members, TimeNs budget)
    : pool_(std::move(pool)), overhead_(OverheadModel::server_like()) {
  SPEEDQM_REQUIRE(pool_ != nullptr, "MultiTaskMix: null pool");
  budget_ = budget > 0 ? budget : pool_->budget_for(members);
  controllers_ =
      build_member_controllers(*pool_, members, budget_, overhead_);

  std::vector<TaskSpec> task_specs;
  std::vector<CyclicTimeSource*> traces;
  for (std::size_t slot = 0; slot < members.size(); ++slot) {
    const std::size_t task = members[slot];
    task_specs.push_back(TaskSpec{pool_->name(task),
                                  controllers_.apps[slot].get(),
                                  &pool_->raw_timing(task)});
    traces.push_back(&pool_->trace(task));
  }
  composed_ = std::make_unique<ComposedSystem>(compose_tasks(std::move(task_specs)));
  source_ = std::make_unique<ComposedCyclicSource>(*composed_, std::move(traces));
}

std::vector<const PolicyEngine*> MultiTaskMix::engines() const {
  return controllers_.engine_ptrs();
}

ExecutorOptions MultiTaskMix::executor_options(std::size_t cycles) const {
  ExecutorOptions opts;
  opts.cycles = cycles;
  opts.period = budget_;
  opts.platform = Platform(overhead_);
  opts.carry_slack = true;
  return opts;
}

PaperScenario make_paper_scenario(std::uint64_t seed) {
  PaperScenario s;
  s.config = MpegConfig{};
  s.config.seed = seed;
  s.total_deadline = sec(30);
  s.frame_period = s.total_deadline / s.config.num_frames;
  s.rho = {1, 10, 20, 30, 40, 50};
  s.overhead = OverheadModel::ipod_like();
  s.workload = std::make_unique<MpegWorkload>(s.config, s.frame_period);

  SPEEDQM_ASSERT(s.workload->app().size() == kPaperActions,
                 "paper scenario: action count drifted from 1189");
  SPEEDQM_ASSERT(s.workload->timing().num_levels() == kPaperLevels,
                 "paper scenario: quality level count drifted from 7");
  return s;
}

const std::vector<std::string>& perturbation_scenario_names() {
  static const std::vector<std::string> names = {
      "calm",        "spike",       "jitter",     "stall",
      "overhead-storm", "flaky-shard", "disconnect", "storm"};
  return names;
}

PerturbationScenario make_perturbation_scenario(const std::string& name,
                                                std::size_t cycles,
                                                std::uint64_t seed) {
  SPEEDQM_REQUIRE(cycles >= 8,
                  "make_perturbation_scenario: need >= 8 cycles for windows");
  // Window positions are horizon fractions so one catalogue serves any
  // serving length; every window stays inside [1, cycles).
  const auto at = [cycles](std::size_t num, std::size_t den) {
    return std::max<std::size_t>(1, num * cycles / den);
  };
  const auto span = [cycles, at](std::size_t num, std::size_t den,
                                 std::size_t len_num, std::size_t len_den) {
    const std::size_t begin = at(num, den);
    const std::size_t len =
        std::max<std::size_t>(2, len_num * cycles / len_den);
    return std::make_pair(begin, std::min(cycles, begin + len));
  };

  std::vector<PerturbationWindow> w;
  const bool storm = name == "storm";
  if (name == "calm") {
    return PerturbationScenario(seed, {});
  }
  if (name == "spike" || storm) {
    // The canonical degradation-gate script: two load spikes, the second
    // harsher — actual times pushed toward, then past, Cwc.
    const auto [b1, e1] = span(1, 4, 1, 8);
    const auto [b2, e2] = span(5, 8, 1, 8);
    w.push_back({FaultKind::kLoadSpike, b1, e1, 1.5});
    w.push_back({FaultKind::kLoadSpike, b2, e2, 2.0});
  }
  if (name == "jitter" || storm) {
    const auto [b, e] = span(1, 4, 1, 2);
    w.push_back({FaultKind::kClockJitter, b, e, 100000.0});  // +-100 us
  }
  if (name == "stall" || storm) {
    const auto [b, e] = span(1, 3, 1, 8);
    w.push_back({FaultKind::kStallFrame, b, e, 8.0});
  }
  if (name == "overhead-storm" || storm) {
    const auto [b, e] = span(1, 2, 1, 6);
    w.push_back({FaultKind::kOverheadSpike, b, e, 16.0});
  }
  if (name == "flaky-shard" || storm) {
    // Shard 0 sleeps 2 ms of host time per stalled cycle: wall-clock
    // pressure on the segment barrier, zero effect on simulated results.
    const auto [b, e] = span(1, 4, 1, 4);
    w.push_back({FaultKind::kShardStall, b, e, 2.0, 0});
  }
  if (name == "disconnect" || storm) {
    // Pool task 1 drops out for the middle third and asks to rejoin.
    w.push_back({FaultKind::kDisconnect, at(1, 3), at(2, 3), 1.0, 1});
  }
  SPEEDQM_REQUIRE(!w.empty(),
                  "make_perturbation_scenario: unknown scenario (valid: calm, "
                  "spike, jitter, stall, overhead-storm, flaky-shard, "
                  "disconnect, storm)");
  return PerturbationScenario(seed, std::move(w));
}

}  // namespace speedqm
