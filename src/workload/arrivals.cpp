#include "workload/arrivals.hpp"

#include <algorithm>

#include "support/contract.hpp"

namespace speedqm {

namespace {

/// SplitMix64 step (same generator family as the TaskPool parameter draw).
std::uint64_t mix_hash(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ArrivalSchedule::ArrivalSchedule(std::vector<ArrivalEvent> events,
                                 std::size_t pool_tasks,
                                 std::size_t initial_tasks)
    : events_(std::move(events)) {
  SPEEDQM_REQUIRE(initial_tasks <= pool_tasks,
                  "ArrivalSchedule: more initial tasks than the pool holds");
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ArrivalEvent& a, const ArrivalEvent& b) {
                     return a.cycle < b.cycle;
                   });
  // Replay the script against the initial membership to validate it.
  std::vector<std::uint8_t> present(pool_tasks, 0);
  for (std::size_t t = 0; t < initial_tasks; ++t) present[t] = 1;
  for (const ArrivalEvent& e : events_) {
    SPEEDQM_REQUIRE(e.task < pool_tasks,
                    "ArrivalSchedule: event task outside the pool");
    if (e.join) {
      SPEEDQM_REQUIRE(!present[e.task],
                      "ArrivalSchedule: join of an already-present task");
      present[e.task] = 1;
    } else {
      SPEEDQM_REQUIRE(present[e.task],
                      "ArrivalSchedule: leave of an absent task");
      present[e.task] = 0;
    }
  }
}

std::vector<std::size_t> ArrivalSchedule::boundaries() const {
  std::vector<std::size_t> cycles;
  for (const ArrivalEvent& e : events_) {
    if (cycles.empty() || cycles.back() != e.cycle) cycles.push_back(e.cycle);
  }
  return cycles;
}

std::vector<ArrivalEvent> ArrivalSchedule::events_at(std::size_t cycle) const {
  std::vector<ArrivalEvent> out;
  for (const ArrivalEvent& e : events_) {
    if (e.cycle == cycle) out.push_back(e);
  }
  return out;
}

std::string ArrivalSchedule::describe() const {
  std::string out;
  for (const ArrivalEvent& e : events_) {
    if (!out.empty()) out += ", ";
    out += "c" + std::to_string(e.cycle) + (e.join ? "+" : "-") + "t" +
           std::to_string(e.task);
  }
  return out.empty() ? "(none)" : out;
}

ArrivalSchedule make_arrival_schedule(std::size_t pool_tasks,
                                      std::size_t initial_tasks,
                                      std::size_t cycles,
                                      std::size_t churn_events,
                                      std::uint64_t seed) {
  SPEEDQM_REQUIRE(initial_tasks <= pool_tasks,
                  "make_arrival_schedule: more initial tasks than pool tasks");
  SPEEDQM_REQUIRE(cycles >= 2 || churn_events == 0,
                  "make_arrival_schedule: need >= 2 cycles to place events");
  std::vector<ArrivalEvent> events;
  std::vector<std::uint8_t> present(pool_tasks, 0);
  for (std::size_t t = 0; t < initial_tasks; ++t) present[t] = 1;

  // First wave: every initially-absent task joins once, at a cycle spread
  // deterministically across the run.
  std::uint64_t rng = seed;
  for (std::size_t task = initial_tasks;
       task < pool_tasks && events.size() < churn_events; ++task) {
    ArrivalEvent e;
    e.cycle = 1 + mix_hash(rng) % (cycles - 1);
    e.task = task;
    e.join = true;
    present[task] = 1;
    events.push_back(e);
  }

  // Churn: alternate leave/rejoin of random present/absent tasks. Leaves
  // target the current present set; rejoins target the absent set. The
  // replay below keeps the script valid by construction.
  while (events.size() < churn_events) {
    const bool leave = (mix_hash(rng) & 1) == 0;
    std::vector<std::size_t> candidates;
    for (std::size_t t = 0; t < pool_tasks; ++t) {
      if (present[t] == (leave ? 1 : 0)) candidates.push_back(t);
    }
    if (candidates.empty()) break;
    const std::size_t task = candidates[mix_hash(rng) % candidates.size()];
    ArrivalEvent e;
    e.cycle = 1 + mix_hash(rng) % (cycles - 1);
    e.task = task;
    e.join = !leave;
    present[task] = e.join ? 1 : 0;
    events.push_back(e);
  }

  // The generator toggled membership in script order, but events fire in
  // cycle order — re-validate the cycle-sorted script and drop any event
  // that became invalid under the sorted order (join while present etc.).
  std::stable_sort(events.begin(), events.end(),
                   [](const ArrivalEvent& a, const ArrivalEvent& b) {
                     return a.cycle < b.cycle;
                   });
  std::vector<std::uint8_t> replay(pool_tasks, 0);
  for (std::size_t t = 0; t < initial_tasks; ++t) replay[t] = 1;
  std::vector<ArrivalEvent> valid;
  for (const ArrivalEvent& e : events) {
    if (e.join == static_cast<bool>(replay[e.task])) continue;
    replay[e.task] = e.join ? 1 : 0;
    valid.push_back(e);
  }
  return ArrivalSchedule(std::move(valid), pool_tasks, initial_tasks);
}

ArrivalSchedule merge_forced_events(const ArrivalSchedule& base,
                                    std::vector<ArrivalEvent> forced,
                                    std::size_t pool_tasks,
                                    std::size_t initial_tasks) {
  std::vector<ArrivalEvent> events = base.events();
  events.insert(events.end(), forced.begin(), forced.end());
  // Base events sort ahead of forced ones within a cycle (stable sort on
  // concatenation order), so the merge is deterministic.
  std::stable_sort(events.begin(), events.end(),
                   [](const ArrivalEvent& a, const ArrivalEvent& b) {
                     return a.cycle < b.cycle;
                   });
  std::vector<std::uint8_t> replay(pool_tasks, 0);
  for (std::size_t t = 0; t < initial_tasks; ++t) replay[t] = 1;
  std::vector<ArrivalEvent> valid;
  for (const ArrivalEvent& e : events) {
    if (e.task >= pool_tasks) continue;
    if (e.join == static_cast<bool>(replay[e.task])) continue;
    replay[e.task] = e.join ? 1 : 0;
    valid.push_back(e);
  }
  return ArrivalSchedule(std::move(valid), pool_tasks, initial_tasks);
}

}  // namespace speedqm
