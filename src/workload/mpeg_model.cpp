#include "workload/mpeg_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/contract.hpp"
#include "support/rng.hpp"

namespace speedqm {

namespace {

double stage_base_us(const MpegConfig& c, MpegStage stage) {
  switch (stage) {
    case MpegStage::kFrameSetup: return c.setup_base_us;
    case MpegStage::kMotionEstimation: return c.me_base_us;
    case MpegStage::kTransform: return c.dct_base_us;
    case MpegStage::kEntropy: return c.vlc_base_us;
  }
  return 0.0;
}

/// GOP coding pattern: I at position 0, then P (or B,B,P groups).
FrameType gop_frame_type(const MpegConfig& c, std::size_t frame) {
  const auto pos = static_cast<int>(frame) % c.gop_length;
  if (pos == 0) return FrameType::kIntra;
  if (c.use_b_frames && pos % 3 != 0) return FrameType::kBidirectional;
  return FrameType::kPredicted;
}

/// GOP-weighted expected frame-type factor of a stage (for Cav).
double expected_frame_type_factor(const MpegConfig& c, MpegStage stage) {
  double sum = 0;
  for (int p = 0; p < c.gop_length; ++p) {
    sum += mpeg_frame_type_factor(stage, gop_frame_type(c, static_cast<std::size_t>(p)));
  }
  return sum / c.gop_length;
}

TimeNs round_us_to_ns(double microseconds) {
  return static_cast<TimeNs>(std::llround(microseconds * 1e3));
}

}  // namespace

double mpeg_stage_quality_factor(const MpegConfig& c, MpegStage stage, Quality q) {
  SPEEDQM_REQUIRE(q >= 0 && q < c.num_levels, "quality out of range");
  switch (stage) {
    case MpegStage::kFrameSetup: return c.setup_q_offset + c.setup_q_slope * q;
    case MpegStage::kMotionEstimation: return c.me_q_offset + c.me_q_slope * q;
    case MpegStage::kTransform: return c.dct_q_offset + c.dct_q_slope * q;
    case MpegStage::kEntropy: return c.vlc_q_offset + c.vlc_q_slope * q;
  }
  return 1.0;
}

double mpeg_frame_type_factor(MpegStage stage, FrameType type) {
  // Frame setup is type-independent.
  if (stage == MpegStage::kFrameSetup) return 1.0;
  switch (type) {
    case FrameType::kIntra:
      // No motion search (cheap intra prediction); every block transformed
      // and coded intra (more coefficients, more bits).
      switch (stage) {
        case MpegStage::kMotionEstimation: return 0.35;
        case MpegStage::kTransform: return 1.10;
        case MpegStage::kEntropy: return 1.25;
        default: return 1.0;
      }
    case FrameType::kPredicted:
      return 1.0;
    case FrameType::kBidirectional:
      // Two reference searches; residuals are small, so fewer bits.
      switch (stage) {
        case MpegStage::kMotionEstimation: return 1.35;
        case MpegStage::kTransform: return 0.95;
        case MpegStage::kEntropy: return 0.80;
        default: return 1.0;
      }
  }
  return 1.0;
}

double mpeg_max_frame_type_factor(const MpegConfig& c, MpegStage stage) {
  double best = std::max(mpeg_frame_type_factor(stage, FrameType::kIntra),
                         mpeg_frame_type_factor(stage, FrameType::kPredicted));
  if (c.use_b_frames) {
    best = std::max(best, mpeg_frame_type_factor(stage, FrameType::kBidirectional));
  }
  return best;
}

MpegStage MpegWorkload::stage_of(ActionIndex i) const {
  SPEEDQM_REQUIRE(i < app_.size(), "stage_of: action out of range");
  if (i == 0) return MpegStage::kFrameSetup;
  switch ((i - 1) % 3) {
    case 0: return MpegStage::kMotionEstimation;
    case 1: return MpegStage::kTransform;
    default: return MpegStage::kEntropy;
  }
}

ScheduledApp MpegWorkload::build_app(const MpegConfig& c, TimeNs frame_budget) {
  SPEEDQM_REQUIRE(frame_budget > 0, "MpegWorkload: frame budget must be positive");
  ScheduledApp::Builder b;
  b.action("frame_setup");
  const int mbs = c.macroblocks();
  const int slice_mbs =
      c.slice_rows_per_milestone > 0 ? c.slice_rows_per_milestone * c.mb_columns : 0;
  for (int mb = 0; mb < mbs; ++mb) {
    const std::string suffix = "_mb" + std::to_string(mb);
    b.action("me" + suffix);
    b.action("dct" + suffix);
    b.action("vlc" + suffix);
    if (slice_mbs > 0 && (mb + 1) % slice_mbs == 0 && mb + 1 < mbs) {
      // Slice pacing: the row group's last VLC action must complete within
      // its proportional share of the frame budget.
      const double fraction = static_cast<double>(1 + 3 * (mb + 1)) /
                              static_cast<double>(c.actions_per_frame());
      b.deadline(static_cast<TimeNs>(
          static_cast<double>(frame_budget) * fraction + 0.5));
    }
  }
  b.deadline(frame_budget);  // the frame's global deadline on the last action
  return std::move(b).build();
}

TimingModel MpegWorkload::build_timing(const MpegConfig& c) {
  TimingModelBuilder tb(c.num_levels);
  const auto add_action = [&](MpegStage stage) {
    std::vector<TimeNs> cav(static_cast<std::size_t>(c.num_levels));
    std::vector<TimeNs> cwc(static_cast<std::size_t>(c.num_levels));
    const double base = stage_base_us(c, stage);
    const bool is_setup = stage == MpegStage::kFrameSetup;
    const double e_tf = is_setup ? 1.0 : expected_frame_type_factor(c, stage);
    const double max_tf = is_setup ? 1.0 : mpeg_max_frame_type_factor(c, stage);
    const double max_act = is_setup ? 1.0 : c.activity_max;
    for (Quality q = 0; q < c.num_levels; ++q) {
      const double sf = mpeg_stage_quality_factor(c, stage, q);
      cav[static_cast<std::size_t>(q)] = round_us_to_ns(base * sf * e_tf);
      cwc[static_cast<std::size_t>(q)] =
          round_us_to_ns(base * sf * max_tf * max_act * c.noise_max);
    }
    tb.action(cav, cwc);
  };

  add_action(MpegStage::kFrameSetup);
  for (int mb = 0; mb < c.macroblocks(); ++mb) {
    add_action(MpegStage::kMotionEstimation);
    add_action(MpegStage::kTransform);
    add_action(MpegStage::kEntropy);
  }
  return std::move(tb).build();
}

TraceTimeSource MpegWorkload::build_traces(const MpegConfig& c,
                                           const TimingModel& tm,
                                           std::vector<FrameType>& types_out,
                                           std::vector<std::size_t>& scenes_out) {
  SPEEDQM_REQUIRE(c.num_frames > 0, "MpegWorkload: need at least one frame");
  const int mbs = c.macroblocks();
  const auto n = static_cast<ActionIndex>(c.actions_per_frame());
  const auto nq = static_cast<std::size_t>(c.num_levels);

  SplitMix64 seeder(c.seed);
  Xoshiro256 scene_rng(seeder.next());
  Xoshiro256 noise_rng(seeder.next());
  Xoshiro256 motion_rng(seeder.next());
  std::uint64_t field_seed = seeder.next();

  // Per-scene base activity field: AR(1) across raster order.
  std::vector<double> base_activity(static_cast<std::size_t>(mbs));
  const auto redraw_field = [&]() {
    Ar1Process field(1.0, c.activity_phi, c.activity_sigma, field_seed++);
    for (auto& a : base_activity) {
      a = std::clamp(field.next(), c.activity_min, c.activity_max);
    }
  };
  redraw_field();

  types_out.clear();
  scenes_out.clear();

  std::vector<std::vector<TimeNs>> data;
  data.reserve(static_cast<std::size_t>(c.num_frames));
  std::size_t clamped = 0;
  std::size_t total = 0;

  for (std::size_t f = 0; f < static_cast<std::size_t>(c.num_frames); ++f) {
    const FrameType type = gop_frame_type(c, f);
    types_out.push_back(type);

    const bool scene_change = f > 0 && scene_rng.chance(c.scene_change_prob);
    if (scene_change) {
      redraw_field();
      scenes_out.push_back(f);
    }
    // Frame-level motion/complexity multiplier; folded into the activity
    // factor and re-clamped so the Cwc bound (built from activity_max)
    // still holds.
    const double motion =
        motion_rng.clamped_normal(1.0, 0.08, 0.80, 1.25) * (scene_change ? 1.2 : 1.0);

    std::vector<TimeNs> frame(n * nq, 0);
    ActionIndex i = 0;

    const auto emit = [&](MpegStage stage, double activity) {
      const double base = stage_base_us(c, stage);
      const double tf = (stage == MpegStage::kFrameSetup)
                            ? 1.0
                            : mpeg_frame_type_factor(stage, type);
      const double noise =
          noise_rng.clamped_normal(1.0, c.noise_sigma, c.noise_min, c.noise_max);
      for (Quality q = 0; q < c.num_levels; ++q) {
        const double sf = mpeg_stage_quality_factor(c, stage, q);
        TimeNs v = round_us_to_ns(base * sf * tf * activity * noise);
        const TimeNs bound = tm.cwc(i, q);
        ++total;
        if (v > bound) {
          v = bound;
          ++clamped;
        }
        if (v < 0) v = 0;
        frame[i * nq + static_cast<std::size_t>(q)] = v;
      }
      ++i;
    };

    emit(MpegStage::kFrameSetup, 1.0);
    for (int mb = 0; mb < mbs; ++mb) {
      const double activity = std::clamp(
          base_activity[static_cast<std::size_t>(mb)] * motion,
          c.activity_min, c.activity_max);
      emit(MpegStage::kMotionEstimation, activity);
      emit(MpegStage::kTransform, activity);
      emit(MpegStage::kEntropy, activity);
    }
    SPEEDQM_ASSERT(i == n, "MpegWorkload: schedule length mismatch");
    data.push_back(std::move(frame));
  }

  TraceTimeSource source(n, c.num_levels, std::move(data));
  source.set_clamp_fraction(total ? static_cast<double>(clamped) /
                                        static_cast<double>(total)
                                  : 0.0);
  return source;
}

MpegWorkload::MpegWorkload(const MpegConfig& config, TimeNs frame_budget)
    : config_(config),
      app_(build_app(config, frame_budget)),
      timing_(build_timing(config)),
      traces_(build_traces(config, timing_, frame_types_, scene_changes_)) {
  SPEEDQM_ASSERT(app_.size() == timing_.num_actions(),
                 "MpegWorkload: app/timing size mismatch");
}

}  // namespace speedqm
