// Console table rendering for bench harness output.
//
// Every bench prints paper-style rows through this, so the "reproduce
// table/figure N" outputs are aligned and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace speedqm {

/// Column-aligned text table. Collects rows, then renders with computed
/// widths. Numeric convenience setters format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& begin_row();
  TextTable& cell(const std::string& v);
  TextTable& cell(const char* v);
  TextTable& cell(double v, int precision = 3);
  TextTable& cell(std::int64_t v);
  TextTable& cell(int v);
  TextTable& cell(std::size_t v);
  void end_row();

  /// Render with a separator under the header. Right-aligns cells that
  /// parse as numbers, left-aligns the rest.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> current_;
  bool in_row_ = false;
};

}  // namespace speedqm
