// Descriptive statistics used by run metrics, benches and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace speedqm {

/// Welford online mean/variance plus min/max. O(1) per sample.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator); 0 if n<2.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile over a stored sample (sorts a copy on demand).
/// Linear interpolation between closest ranks.
double percentile(std::vector<double> samples, double p);

/// Fixed-width histogram over [lo, hi]; out-of-range samples clamp to the
/// edge bins so the total count is preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// ASCII rendering for bench output (one line per non-empty bin).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace speedqm
