// Deterministic random number generation for workload synthesis.
//
// Self-contained (no <random> engines) so that traces are bit-reproducible
// across platforms and standard-library versions: every bench fixes a seed
// and regenerates identical workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "support/contract.hpp"

namespace speedqm {

/// SplitMix64 — used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the library's workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double normal();

  /// Normal with given mean/stddev.
  double normal(double mean, double stddev);

  /// Normal truncated to [lo, hi] by clamping (cheap, adequate for
  /// execution-time noise where the tails are cut by Cwc anyway).
  double clamped_normal(double mean, double stddev, double lo, double hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Triangular distribution on [lo, hi] with mode m.
  double triangular(double lo, double m, double hi);

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// First-order autoregressive process: x_{k+1} = phi*x_k + noise.
/// Used to make execution times *content-correlated* across neighbouring
/// macroblocks/actions — the property that makes control relaxation pay off
/// (long runs of similar load stay inside one quality region).
class Ar1Process {
 public:
  /// phi in [0,1): correlation; sigma: innovation stddev; mean: process mean.
  Ar1Process(double mean, double phi, double sigma, std::uint64_t seed);

  /// Next sample (stationary marginal ~ N(mean, sigma^2 / (1 - phi^2))).
  double next();

  /// Restart the state at the stationary mean (content discontinuity).
  void reset_to_mean() { x_ = 0.0; }

  double mean() const { return mean_; }

 private:
  double mean_, phi_, sigma_;
  double x_ = 0.0;  // deviation from mean
  Xoshiro256 rng_;
};

}  // namespace speedqm
