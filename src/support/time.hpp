// Integer time arithmetic for the quality-management controller.
//
// All controller decisions (tD tables, region borders, deadlines) are exact
// 64-bit nanosecond quantities, matching the paper's symbolic tables which
// are "sets of integers". Doubles appear only in reporting/diagram layers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace speedqm {

/// Time in integer nanoseconds. A plain alias (not a wrapper class): the hot
/// control path does tight arithmetic on arrays of these, and the codebase
/// never mixes time with other integer quantities in the same expression.
using TimeNs = std::int64_t;

/// Sentinel for "minus infinity" interval bounds (open lower border of the
/// qmax quality region, Proposition 2).
inline constexpr TimeNs kTimeMinusInf = std::numeric_limits<TimeNs>::min() / 4;
/// Sentinel for "plus infinity" (actions with no deadline of their own).
inline constexpr TimeNs kTimePlusInf = std::numeric_limits<TimeNs>::max() / 4;

inline constexpr TimeNs ns(std::int64_t v) { return v; }
inline constexpr TimeNs us(std::int64_t v) { return v * 1'000; }
inline constexpr TimeNs ms(std::int64_t v) { return v * 1'000'000; }
inline constexpr TimeNs sec(std::int64_t v) { return v * 1'000'000'000; }

inline constexpr double to_us(TimeNs t) { return static_cast<double>(t) / 1e3; }
inline constexpr double to_ms(TimeNs t) { return static_cast<double>(t) / 1e6; }
inline constexpr double to_sec(TimeNs t) { return static_cast<double>(t) / 1e9; }

/// Nanoseconds from a floating-point quantity, rounding to nearest.
inline constexpr TimeNs from_sec(double s) {
  return static_cast<TimeNs>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}
inline constexpr TimeNs from_ms(double m) {
  return static_cast<TimeNs>(m * 1e6 + (m >= 0 ? 0.5 : -0.5));
}
inline constexpr TimeNs from_us(double u) {
  return static_cast<TimeNs>(u * 1e3 + (u >= 0 ? 0.5 : -0.5));
}

/// Human-readable rendering with an auto-selected unit ("1.234 ms").
std::string format_time(TimeNs t);

}  // namespace speedqm
