#include "support/time.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace speedqm {

std::string format_time(TimeNs t) {
  if (t >= kTimePlusInf) return "+inf";
  if (t <= kTimeMinusInf) return "-inf";
  const double a = std::abs(static_cast<double>(t));
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  if (a >= 1e9) {
    os << to_sec(t) << " s";
  } else if (a >= 1e6) {
    os << to_ms(t) << " ms";
  } else if (a >= 1e3) {
    os << to_us(t) << " us";
  } else {
    os << t << " ns";
  }
  return os.str();
}

}  // namespace speedqm
