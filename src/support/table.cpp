#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "support/contract.hpp"

namespace speedqm {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  SPEEDQM_REQUIRE(!header_.empty(), "TextTable: header must be non-empty");
}

TextTable& TextTable::begin_row() {
  SPEEDQM_REQUIRE(!in_row_, "TextTable: previous row not finished");
  in_row_ = true;
  current_.clear();
  return *this;
}

TextTable& TextTable::cell(const std::string& v) {
  SPEEDQM_REQUIRE(in_row_, "TextTable: cell() outside begin_row()");
  current_.push_back(v);
  return *this;
}
TextTable& TextTable::cell(const char* v) { return cell(std::string(v)); }
TextTable& TextTable::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return cell(os.str());
}
TextTable& TextTable::cell(std::int64_t v) { return cell(std::to_string(v)); }
TextTable& TextTable::cell(int v) { return cell(std::to_string(v)); }
TextTable& TextTable::cell(std::size_t v) { return cell(std::to_string(v)); }

void TextTable::end_row() {
  SPEEDQM_REQUIRE(in_row_, "TextTable: end_row() without begin_row()");
  SPEEDQM_REQUIRE(current_.size() == header_.size(),
                  "TextTable: row width does not match header");
  rows_.push_back(current_);
  in_row_ = false;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '%' && c != 'e' && c != 'E' && c != '-' && c != '+') {
      return false;
    }
  }
  return digit;
}
}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      const auto pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
    }
    out << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w;
  total += 2 * (width.size() - 1);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace speedqm
