#include "support/rng.hpp"

#include <cmath>

namespace speedqm {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  // 53-bit mantissa trick: uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  SPEEDQM_REQUIRE(lo <= hi, "uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  SPEEDQM_REQUIRE(lo <= hi, "uniform_int: lo must be <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Xoshiro256::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Xoshiro256::clamped_normal(double mean, double stddev, double lo, double hi) {
  SPEEDQM_REQUIRE(lo <= hi, "clamped_normal: lo must be <= hi");
  const double x = normal(mean, stddev);
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

bool Xoshiro256::chance(double p) { return uniform01() < p; }

double Xoshiro256::triangular(double lo, double m, double hi) {
  SPEEDQM_REQUIRE(lo <= m && m <= hi, "triangular: requires lo <= mode <= hi");
  if (lo == hi) return lo;
  const double u = uniform01();
  const double fc = (m - lo) / (hi - lo);
  if (u < fc) return lo + std::sqrt(u * (hi - lo) * (m - lo));
  return hi - std::sqrt((1.0 - u) * (hi - lo) * (hi - m));
}

Ar1Process::Ar1Process(double mean, double phi, double sigma, std::uint64_t seed)
    : mean_(mean), phi_(phi), sigma_(sigma), rng_(seed) {
  SPEEDQM_REQUIRE(phi >= 0.0 && phi < 1.0, "Ar1Process: phi must be in [0,1)");
  SPEEDQM_REQUIRE(sigma >= 0.0, "Ar1Process: sigma must be non-negative");
}

double Ar1Process::next() {
  x_ = phi_ * x_ + sigma_ * rng_.normal();
  return mean_ + x_;
}

}  // namespace speedqm
