#include "support/csv.hpp"

#include <sstream>
#include <stdexcept>

#include "support/contract.hpp"

namespace speedqm {

namespace {
std::string format_double(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::put_field(const std::string& v) {
  if (!first_in_row_) out_ << ',';
  first_in_row_ = false;
  if (v.find_first_of(",\"\n") != std::string::npos) {
    out_ << '"';
    for (char c : v) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  } else {
    out_ << v;
  }
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  begin_row();
  for (const auto& f : fields) put_field(f);
  end_row();
}

void CsvWriter::row(std::initializer_list<std::string> fields) {
  row(std::vector<std::string>(fields));
}

CsvWriter& CsvWriter::begin_row() {
  SPEEDQM_REQUIRE(!row_started_, "CsvWriter: previous row not finished");
  row_started_ = true;
  first_in_row_ = true;
  return *this;
}

CsvWriter& CsvWriter::col(const std::string& v) {
  SPEEDQM_REQUIRE(row_started_, "CsvWriter: col() outside begin_row()");
  put_field(v);
  return *this;
}
CsvWriter& CsvWriter::col(const char* v) { return col(std::string(v)); }
CsvWriter& CsvWriter::col(double v) { return col(format_double(v)); }
CsvWriter& CsvWriter::col(std::int64_t v) { return col(std::to_string(v)); }
CsvWriter& CsvWriter::col(std::uint64_t v) { return col(std::to_string(v)); }
CsvWriter& CsvWriter::col(int v) { return col(std::to_string(v)); }

void CsvWriter::end_row() {
  SPEEDQM_REQUIRE(row_started_, "CsvWriter: end_row() without begin_row()");
  out_ << '\n';
  row_started_ = false;
}

}  // namespace speedqm
