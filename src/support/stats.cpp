#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/contract.hpp"

namespace speedqm {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double p) {
  SPEEDQM_REQUIRE(!samples.empty(), "percentile: empty sample set");
  SPEEDQM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile: p must be in [0,100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SPEEDQM_REQUIRE(lo < hi, "Histogram: lo must be < hi");
  SPEEDQM_REQUIRE(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = peak ? counts_[i] * width / peak : 0;
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace speedqm
