// Lightweight contract checking used across the library.
//
// The library is a control component: a violated precondition means the
// caller would get a controller that silently violates safety, so contract
// failures throw rather than abort — callers (tests, tools) can recover and
// report.
//
// Checking is compile-time gated so the decision hot path (TimingModel
// accessors, td_online sweeps, table row probes) carries zero branch cost
// in optimized builds:
//   * Debug builds (no NDEBUG): all checks active.
//   * Release builds (NDEBUG): SPEEDQM_REQUIRE / SPEEDQM_ASSERT compile to
//     nothing — the expressions are not evaluated.
//   * Defining SPEEDQM_FORCE_CONTRACTS re-enables checking regardless of
//     NDEBUG; the test suite links a library variant built this way so
//     precondition tests hold in every configuration.
#pragma once

#include <stdexcept>
#include <string>

namespace speedqm {

/// Thrown when a public-API precondition is violated.
class contract_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (indicates a library bug).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  throw contract_error(std::string(file) + ":" + std::to_string(line) +
                       ": precondition failed: (" + expr + ") " + msg);
}
[[noreturn]] inline void invariant_fail(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw invariant_error(std::string(file) + ":" + std::to_string(line) +
                        ": invariant failed: (" + expr + ") " + msg);
}
}  // namespace detail

}  // namespace speedqm

#if !defined(NDEBUG) || defined(SPEEDQM_FORCE_CONTRACTS)
#define SPEEDQM_CONTRACTS_ENABLED 1
#else
#define SPEEDQM_CONTRACTS_ENABLED 0
#endif

#if SPEEDQM_CONTRACTS_ENABLED

/// Check a public-API precondition; throws speedqm::contract_error.
#define SPEEDQM_REQUIRE(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) ::speedqm::detail::contract_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws speedqm::invariant_error.
#define SPEEDQM_ASSERT(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) ::speedqm::detail::invariant_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Marks a spot control flow must never reach (e.g. after a fully-covered
/// switch); throws in checked builds, tells the optimizer in release.
#define SPEEDQM_UNREACHABLE(msg) \
  ::speedqm::detail::invariant_fail("unreachable", __FILE__, __LINE__, (msg))

#else  // release: checks vanish; the unevaluated sizeof keeps the checked
       // expression "used" so -Wunused warnings don't fire on variables
       // that exist only for checking.

#define SPEEDQM_REQUIRE(expr, msg)     \
  do {                                 \
    (void)sizeof((expr) ? true : false); \
  } while (false)
#define SPEEDQM_ASSERT(expr, msg)      \
  do {                                 \
    (void)sizeof((expr) ? true : false); \
  } while (false)
#define SPEEDQM_UNREACHABLE(msg) __builtin_unreachable()

#endif  // SPEEDQM_CONTRACTS_ENABLED
