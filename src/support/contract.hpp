// Lightweight contract checking used across the library.
//
// The library is a control component: a violated precondition means the
// caller would get a controller that silently violates safety, so contract
// failures throw rather than abort — callers (tests, tools) can recover and
// report.
#pragma once

#include <stdexcept>
#include <string>

namespace speedqm {

/// Thrown when a public-API precondition is violated.
class contract_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (indicates a library bug).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  throw contract_error(std::string(file) + ":" + std::to_string(line) +
                       ": precondition failed: (" + expr + ") " + msg);
}
[[noreturn]] inline void invariant_fail(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw invariant_error(std::string(file) + ":" + std::to_string(line) +
                        ": invariant failed: (" + expr + ") " + msg);
}
}  // namespace detail

}  // namespace speedqm

/// Check a public-API precondition; throws speedqm::contract_error.
#define SPEEDQM_REQUIRE(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) ::speedqm::detail::contract_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws speedqm::invariant_error.
#define SPEEDQM_ASSERT(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) ::speedqm::detail::invariant_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
