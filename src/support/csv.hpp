// Minimal CSV emission for bench outputs (figure data series).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace speedqm {

/// Streams rows to a file; quotes fields containing separators. The bench
/// harness writes one CSV per figure so plots can be regenerated offline.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes a header or data row; values are emitted verbatim except for
  /// quoting. Convenience overloads format numbers with full precision.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string> fields);

  /// Builder-style row assembly: w.begin_row().col(1).col("x").end_row();
  CsvWriter& begin_row();
  CsvWriter& col(const std::string& v);
  CsvWriter& col(const char* v);
  CsvWriter& col(double v);
  CsvWriter& col(std::int64_t v);
  CsvWriter& col(std::uint64_t v);
  CsvWriter& col(int v);
  void end_row();

  const std::string& path() const { return path_; }

 private:
  void put_field(const std::string& v);

  std::string path_;
  std::ofstream out_;
  bool row_started_ = false;
  bool first_in_row_ = true;
};

}  // namespace speedqm
