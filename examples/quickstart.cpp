// Quickstart: control a 12-action pipeline with the symbolic Quality
// Manager in ~80 lines.
//
//   1. Describe the scheduled application (actions + deadline).
//   2. Provide timing estimates Cav / Cwc per (action, quality).
//   3. Compile the quality-region and relaxation tables offline.
//   4. Run the controlled system; the manager picks the maximal quality
//      that can still meet the deadline whatever happens next.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "core/application.hpp"
#include "core/region_compiler.hpp"
#include "core/relaxation_manager.hpp"
#include "core/timing_model.hpp"
#include "core/controller.hpp"
#include "support/rng.hpp"

using namespace speedqm;

namespace {

/// Actual execution times: around 85% of average, with content noise.
class DemoSource final : public ActualTimeSource {
 public:
  explicit DemoSource(const TimingModel& tm) : tm_(&tm), rng_(7) {}
  TimeNs actual_time(ActionIndex i, Quality q) override {
    const double load = rng_.clamped_normal(0.85, 0.15, 0.3, 1.4);
    const auto t = static_cast<TimeNs>(
        static_cast<double>(tm_->cav(i, q)) * load);
    return std::min(t, tm_->cwc(i, q));
  }

 private:
  const TimingModel* tm_;
  Xoshiro256 rng_;
};

}  // namespace

int main() {
  // (1) Twelve pipeline stages; the whole cycle must finish within 10 ms.
  const ActionIndex kActions = 12;
  const ScheduledApp app = make_uniform_app(kActions, ms(10), "stage");

  // (2) Five quality levels; each stage's average cost grows linearly from
  //     400 us (q0) to 1 ms (q4), worst case 1.6x the average.
  TimingModelBuilder builder(/*num_levels=*/5);
  for (ActionIndex i = 0; i < kActions; ++i) {
    builder.linear_action(us(400), us(1000), /*wc_factor=*/1.6);
  }
  const TimingModel timing = std::move(builder).build();

  // (3) Offline compilation: the symbolic controller is just two integer
  //     tables (this is what would ship to the target).
  const PolicyEngine engine(app, timing);  // mixed policy (the paper's)
  const auto regions = RegionCompiler::compile_regions(engine);
  const auto relaxation =
      RegionCompiler::compile_relaxation(engine, regions, {1, 2, 4});
  std::printf("compiled controller: %zu + %zu integers (%zu bytes)\n\n",
              regions.num_integers(), relaxation.num_integers(),
              regions.memory_bytes() + relaxation.memory_bytes());

  // (4) Run one controlled cycle.
  RelaxationManager manager(regions, relaxation);
  DemoSource source(timing);
  const CycleResult run = run_cycle(app, manager, source);

  std::printf("action        q  start      duration   manager\n");
  std::printf("---------------------------------------------------\n");
  for (const auto& step : run.steps) {
    std::printf("%-12s  %d  %-9s  %-9s  %s\n",
                app.name(step.action).c_str(), step.quality,
                format_time(step.start).c_str(),
                format_time(step.duration).c_str(),
                step.manager_called
                    ? ("called, covers " + std::to_string(step.relax_steps))
                          .c_str()
                    : "skipped (relaxed)");
  }
  std::printf("---------------------------------------------------\n");
  std::printf("completed at %s of a %s budget; mean quality %.2f; "
              "%zu manager calls for %zu actions; deadline misses: %zu\n",
              format_time(run.completion).c_str(), format_time(ms(10)).c_str(),
              run.mean_quality(), run.manager_calls, run.steps.size(),
              run.deadline_misses);
  return run.deadline_misses == 0 ? 0 : 1;
}
