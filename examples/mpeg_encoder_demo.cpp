// The paper's evaluation scenario end-to-end: a synthetic MPEG encoder
// (1,189 actions/frame, 7 quality levels, 396 macroblocks) encoding 29
// frames under a global 30 s deadline on an iPod-like platform, controlled
// by the symbolic Quality Manager with control relaxation.
//
// Prints a per-frame report (type, quality, slack, relaxation) and a
// closing summary comparable to section 4.2.
#include <cstdio>

#include "core/region_compiler.hpp"
#include "core/relaxation_manager.hpp"
#include "sim/metrics.hpp"
#include "workload/scenarios.hpp"

using namespace speedqm;

int main() {
  PaperScenario scenario = make_paper_scenario();
  std::printf("MPEG encoder: %zu actions/frame, %d levels, %d frames, "
              "D = %s (=> %s per frame)\n",
              scenario.app().size(), scenario.timing().num_levels(),
              scenario.config.num_frames,
              format_time(scenario.total_deadline).c_str(),
              format_time(scenario.frame_period).c_str());

  // Offline: compile the symbolic controller against a timing model that
  // already budgets for the manager's own call cost (§2.2.2).
  const TimingModel controller_tm =
      scenario.controller_model(ManagerFlavor::kRelaxation);
  const PolicyEngine engine(scenario.app(), controller_tm);
  const auto regions = RegionCompiler::compile_regions(engine);
  const auto relaxation =
      RegionCompiler::compile_relaxation(engine, regions, scenario.rho);
  RelaxationManager manager(regions, relaxation);
  std::printf("symbolic controller: %zu integers (%.0f KB)\n\n",
              manager.num_table_integers(),
              static_cast<double>(manager.memory_bytes()) / 1024.0);

  ExecutorOptions opts;
  opts.cycles = static_cast<std::size_t>(scenario.config.num_frames);
  opts.period = scenario.frame_period;
  opts.platform = Platform(scenario.overhead);
  const RunResult run =
      run_cyclic(scenario.app(), manager, scenario.traces(), opts);

  std::printf("frame  type  mean q  action time  overhead  calls  slack at end\n");
  std::printf("----------------------------------------------------------------\n");
  for (const auto& c : run.cycles) {
    const char* type = "P";
    switch (scenario.workload->frame_type(c.cycle)) {
      case FrameType::kIntra: type = "I"; break;
      case FrameType::kBidirectional: type = "B"; break;
      default: break;
    }
    const TimeNs milestone =
        static_cast<TimeNs>(c.cycle + 1) * scenario.frame_period;
    std::printf("%5zu  %-4s  %6.2f  %11s  %8s  %5zu  %s\n", c.cycle, type,
                c.mean_quality, format_time(c.action_time).c_str(),
                format_time(c.overhead_time).c_str(), c.manager_calls,
                format_time(milestone - c.completion).c_str());
  }
  std::printf("----------------------------------------------------------------\n");

  const auto summary = summarize_run(manager.name(), run);
  std::printf("\nmean quality %.3f | overhead %.2f%% | %zu manager calls for %zu "
              "actions | deadline misses %zu | quality stddev %.3f\n",
              summary.mean_quality, summary.overhead_pct, summary.manager_calls,
              run.steps.size(), summary.deadline_misses,
              summary.smoothness.quality_stddev);
  std::printf("relaxation depths granted:");
  for (std::size_t r = 1; r < summary.relax_histogram.size(); ++r) {
    if (summary.relax_histogram[r] == 0) continue;
    std::printf("  r=%zu x%zu", r, summary.relax_histogram[r]);
  }
  std::printf("\nscene changes at frames:");
  if (scenario.workload->scene_changes().empty()) std::printf(" (none)");
  for (const auto f : scenario.workload->scene_changes()) {
    std::printf(" %zu", f);
  }
  std::printf("\ncompleted %s within the %s global deadline\n",
              format_time(run.total_time).c_str(),
              format_time(scenario.total_deadline).c_str());
  return summary.deadline_misses == 0 ? 0 : 1;
}
