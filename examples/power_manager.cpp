// The paper's §5 future-work direction: applying the quality-management
// machinery to power management. "Quality level is replaced by frequency
// and the objective is to minimize energy consumption without missing the
// deadlines."
//
// Mapping onto the framework: a DVFS processor runs a batch of actions
// with known work (cycles). Quality level q indexes *descending* clock
// frequency, so execution time C(a, q) = work(a) / freq(q) is increasing
// in q — Definition 1 holds — and the Quality Manager's "maximize q"
// objective becomes "run as slowly as the deadline allows", the classic
// race-to-idle alternative. Energy per action ~ work * freq^2 (E = C V^2
// cycles with V ~ f), so higher q means quadratically less energy.
#include <algorithm>
#include <cstdio>

#include "core/baseline_managers.hpp"
#include "core/region_compiler.hpp"
#include "core/relaxation_manager.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"
#include "workload/trace_source.hpp"

using namespace speedqm;

namespace {

constexpr int kLevels = 6;
constexpr ActionIndex kActions = 240;
constexpr std::size_t kJobs = 12;

/// DVFS operating points, descending (q = 0 is the fastest = safest).
constexpr double kFreqGHz[kLevels] = {1.60, 1.40, 1.20, 1.00, 0.85, 0.70};

double energy_factor(Quality q) {
  // Relative energy per unit of work: f^2 (voltage tracks frequency).
  return kFreqGHz[q] * kFreqGHz[q];
}

/// Work model: mega-cycles per action, content-correlated.
std::vector<double> make_work(std::uint64_t seed) {
  std::vector<double> work(kActions);
  Ar1Process process(2.4, 0.85, 0.35, seed);
  for (auto& w : work) w = std::clamp(process.next(), 1.0, 4.5);
  return work;
}

TimeNs time_for(double mega_cycles, Quality q) {
  return static_cast<TimeNs>(mega_cycles * 1e6 / kFreqGHz[q]);  // ns
}

double run_energy(const RunResult& run,
                  const std::vector<std::vector<double>>& work) {
  double total = 0;
  for (const auto& s : run.steps) {
    total += work[s.cycle][s.action] * energy_factor(s.quality);
  }
  return total;
}

}  // namespace

int main() {
  // Per-job work traces (12 jobs of 240 actions).
  std::vector<std::vector<double>> work;
  for (std::size_t j = 0; j < kJobs; ++j) work.push_back(make_work(900 + j));

  // Timing model: the *planning* bound uses the worst work per action
  // (4.5 Mcycles); the average uses the process mean.
  TimingModelBuilder tb(kLevels);
  for (ActionIndex i = 0; i < kActions; ++i) {
    std::vector<TimeNs> cav(kLevels), cwc(kLevels);
    for (Quality q = 0; q < kLevels; ++q) {
      cav[static_cast<std::size_t>(q)] = time_for(2.4, q);
      cwc[static_cast<std::size_t>(q)] = time_for(4.5, q);
    }
    tb.action(cav, cwc);
  }
  const TimingModel timing = std::move(tb).build();

  // Deadline: each job must finish within 45% above the average-work
  // runtime at the middle operating point.
  const TimeNs budget = static_cast<TimeNs>(
      static_cast<double>(timing.total_cav(2)) * 1.45);
  const ScheduledApp app = make_uniform_app(kActions, budget, "dsp");

  // Actual times from the work traces.
  std::vector<std::vector<TimeNs>> data;
  for (std::size_t j = 0; j < kJobs; ++j) {
    std::vector<TimeNs> cycle(kActions * kLevels);
    for (ActionIndex i = 0; i < kActions; ++i) {
      for (Quality q = 0; q < kLevels; ++q) {
        cycle[i * kLevels + static_cast<std::size_t>(q)] =
            time_for(work[j][i], q);
      }
    }
    data.push_back(std::move(cycle));
  }
  TraceTimeSource traces(kActions, kLevels, std::move(data));

  std::printf("DVFS batch: %zu actions/job, %zu jobs, budget %s per job\n",
              static_cast<std::size_t>(kActions), kJobs,
              format_time(budget).c_str());
  std::printf("operating points (GHz):");
  for (double f : kFreqGHz) std::printf(" %.2f", f);
  std::printf("  (q = 0 fastest)\n\n");

  const PolicyEngine engine(app, timing);
  if (engine.td_online(0, kQmin) < 0) {
    std::printf("budget below worst case even at max frequency — aborting\n");
    return 1;
  }
  const auto regions = RegionCompiler::compile_regions(engine);
  const auto relaxation =
      RegionCompiler::compile_relaxation(engine, regions, {1, 4, 8, 16});

  ExecutorOptions opts;
  opts.cycles = kJobs;
  opts.period = budget;
  opts.carry_slack = false;  // each job is budgeted independently

  struct Entry {
    const char* name;
    double energy;
    std::size_t misses;
    double mean_q;
  };
  std::vector<Entry> entries;

  {
    RelaxationManager manager(regions, relaxation);
    const auto run = run_cyclic(app, manager, traces, opts);
    entries.push_back({"speed-diagram governor", run_energy(run, work),
                       run.total_deadline_misses, run.mean_quality()});
  }
  {
    ConstantQualityManager manager(0);  // race-to-idle at max frequency
    const auto run = run_cyclic(app, manager, traces, opts);
    entries.push_back({"max frequency (q0)", run_energy(run, work),
                       run.total_deadline_misses, run.mean_quality()});
  }
  {
    const PolicyEngine safe(app, timing, PolicyKind::kSafe);
    NumericManager manager(safe);
    const auto run = run_cyclic(app, manager, traces, opts);
    entries.push_back({"safe-policy governor", run_energy(run, work),
                       run.total_deadline_misses, run.mean_quality()});
  }

  const double base = entries[1].energy;  // max-frequency reference
  std::printf("governor                 energy (rel)  savings   misses  mean level\n");
  std::printf("--------------------------------------------------------------------\n");
  for (const auto& e : entries) {
    std::printf("%-24s %12.3f  %6.1f%%  %6zu  %10.2f\n", e.name,
                e.energy / base, 100.0 * (1.0 - e.energy / base), e.misses,
                e.mean_q);
  }
  std::printf("--------------------------------------------------------------------\n");
  std::printf("\nthe governor throttles down whenever the speed diagram shows the\n"
              "job ahead of its optimal-speed line, and races back up when content\n"
              "gets heavy — energy drops with zero deadline misses.\n");
  return entries[0].misses == 0 && entries[0].energy < base ? 0 : 1;
}
