// A non-multimedia use of the library: a sensor-fusion pipeline on an
// embedded controller. Each 50 ms tick runs acquire -> filter -> fuse ->
// plan -> emit over 8 sensor channels; "quality" selects the filter order
// and fusion resolution. The cycle deadline is hard (the actuator command
// must go out), execution times depend on scene clutter, and the symbolic
// manager keeps fidelity maximal without ever missing the tick.
//
// Demonstrates: milestone deadlines inside a cycle, the synthetic workload
// generator, profiling-based timing models, and saving/loading the
// compiled controller.
#include <cstdio>

#include "core/region_compiler.hpp"
#include "core/relaxation_manager.hpp"
#include "sim/metrics.hpp"
#include "workload/profiler.hpp"
#include "workload/synthetic.hpp"

using namespace speedqm;

int main() {
  // The pipeline: 8 channels x 5 stages = 40 actions per tick. Stage costs
  // differ per channel (the generator randomizes base costs); quality
  // levels 0..5 scale them ~2.2x end to end. A milestone deadline every 8
  // actions models per-stage latency contracts; the final deadline is the
  // 50 ms tick.
  SyntheticSpec spec;
  spec.num_actions = 40;
  spec.num_levels = 6;
  spec.num_cycles = 40;          // 2 seconds of operation
  spec.base_min_ns = us(120);
  spec.base_max_ns = us(450);
  spec.quality_span = 2.2;
  spec.curve = QualityCurve::kConcave;  // cheap gains first, like filters
  spec.wc_factor = 1.7;
  spec.load_phi = 0.9;           // clutter is persistent across actions
  spec.load_sigma = 0.10;
  spec.budget_quality = 4;
  spec.budget_factor = 1.08;
  spec.milestone_every = 8;      // per-stage latency milestones
  spec.seed = 424242;
  SyntheticWorkload workload(spec);
  std::printf("pipeline: %zu actions/tick, %d quality levels, budget %s "
              "(milestones every %zu actions)\n",
              workload.app().size(), spec.num_levels,
              format_time(workload.budget()).c_str(),
              static_cast<std::size_t>(spec.milestone_every));

  // Field-calibration workflow: profile the first 8 ticks to estimate
  // Cav/Cwc (with a 30% safety factor), then compile the controller from
  // the *profiled* model — exactly the paper's methodology on the iPod.
  ProfilerOptions prof;
  prof.first_cycle = 0;
  prof.cycles = 8;
  prof.safety_factor = 1.3;
  const TimingModel profiled = profile_timing(workload.traces(), prof);
  std::printf("profiled %zu ticks; e.g. stage0: Cav(q0)=%s Cwc(q0)=%s "
              "Cav(q5)=%s Cwc(q5)=%s\n",
              prof.cycles, format_time(profiled.cav(0, 0)).c_str(),
              format_time(profiled.cwc(0, 0)).c_str(),
              format_time(profiled.cav(0, 5)).c_str(),
              format_time(profiled.cwc(0, 5)).c_str());

  const PolicyEngine engine(workload.app(), profiled);
  if (engine.td_online(0, kQmin) < 0) {
    std::printf("tick budget cannot absorb the profiled worst case — "
                "aborting\n");
    return 1;
  }
  const auto regions = RegionCompiler::compile_regions(engine);
  const auto relaxation =
      RegionCompiler::compile_relaxation(engine, regions, {1, 2, 4, 8});

  // Ship the controller through its serialized form (what a deployment
  // pipeline would flash to the device), then run from the loaded copy.
  RegionCompiler::save_regions_file(regions, "pipeline_regions.bin");
  RegionCompiler::save_relaxation_file(relaxation, "pipeline_relax.bin");
  const auto regions2 = RegionCompiler::load_regions_file("pipeline_regions.bin");
  const auto relax2 = RegionCompiler::load_relaxation_file("pipeline_relax.bin");
  RelaxationManager manager(regions2, relax2);

  ExecutorOptions opts;
  opts.cycles = spec.num_cycles;
  opts.period = workload.budget();
  opts.carry_slack = false;  // ticks are periodic; slack does not carry
  opts.platform = Platform(OverheadModel{us(2), 5.0});  // modern MCU
  const RunResult run =
      run_cyclic(workload.app(), manager, workload.traces(), opts);

  std::printf("\ntick fidelity over %zu ticks:\n", run.cycles.size());
  for (std::size_t c = 0; c < run.cycles.size(); c += 5) {
    std::printf("  ticks %2zu..%2zu:", c, std::min(c + 4, run.cycles.size() - 1));
    for (std::size_t k = c; k < std::min(c + 5, run.cycles.size()); ++k) {
      std::printf(" %.2f", run.cycles[k].mean_quality);
    }
    std::printf("\n");
  }
  const auto summary = summarize_run(manager.name(), run);
  std::printf("\nmean fidelity %.3f/5 | overhead %.3f%% | misses %zu | "
              "infeasible %zu | quality stddev %.3f\n",
              summary.mean_quality, summary.overhead_pct,
              summary.deadline_misses, summary.infeasible,
              summary.smoothness.quality_stddev);
  std::remove("pipeline_regions.bin");
  std::remove("pipeline_relax.bin");
  return summary.deadline_misses == 0 ? 0 : 1;
}
